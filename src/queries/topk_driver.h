#ifndef RIPPLE_QUERIES_TOPK_DRIVER_H_
#define RIPPLE_QUERIES_TOPK_DRIVER_H_

#include <set>
#include <vector>

#include "net/frame_cost.h"
#include "obs/trace.h"
#include "queries/topk.h"
#include "ripple/api.h"
#include "ripple/engine.h"

namespace ripple {

/// Seeded top-k initiation.
///
/// When fewer than k tuples are known, no sound algorithm may prune any
/// region (any region could fill the missing ranks — Algorithm 8's
/// `m < k` branch), so an initiator holding fewer than k local tuples
/// floods its first hops. At the paper's density (22,000 tuples over
/// 2^14+ peers, ~1.4 per peer) that flood covers most of the network and
/// drowns the f+ pruning the framework is built around.
///
/// The fix mirrors what DSL and SSP do for skylines (start processing at
/// the peer owning the most promising spot): the initiator first routes
/// the query to the peer owning the scoring function's peak point, then
/// walks along the locally best link regions, folding each peer's local
/// state into a seed state, until k tuples are witnessed. Processing then
/// starts from the peak owner with that seed. Every bootstrap hop is
/// charged to the query (routing + walk are sequential, so they add to
/// latency). Soundness is untouched: seed states are true claims, and the
/// main run still covers the whole domain, so the seed peers' tuples are
/// collected by the run itself.
/// Generic over the engine: works for both the recursive `Engine` (whose
/// Run ignores fault/retry/deadline) and the discrete-event `AsyncEngine`
/// (which honors them; the bootstrap itself runs on the analytic perfect
/// network either way). The request's `initiator` is where the bootstrap
/// routing starts; the engine run proper is initiated at the peak owner
/// with the witnessed seed state.
/// Phase 2 of the seeded initiation in isolation: the greedy walk from
/// `start` along locally-best link regions, folding each walked peer's
/// local state into the returned seed until k tuples are witnessed (or
/// the 64-step bound / a dead end stops it). Pure overlay analytics — no
/// engine, no tracing — so the live-overlay client (net::NetClient
/// callers) can reproduce the simulator's bootstrap exactly; `*path`
/// receives the walked peers in order for charging/tracing by the caller.
template <typename Overlay>
TopKState TopKSeedWalk(const Overlay& overlay, const TopKPolicy& policy,
                       const TopKQuery& query, PeerId start,
                       std::vector<PeerId>* path) {
  TopKState seed;
  PeerId current = start;
  std::set<PeerId> walked;
  // The walk is bounded; if the network simply has fewer than k tuples the
  // main run degenerates to (a correct) broadcast anyway.
  for (int step = 0; step < 64; ++step) {
    if (!walked.insert(current).second) break;
    if (path != nullptr) path->push_back(current);
    const auto& peer = overlay.GetPeer(current);
    const TopKState local = policy.ComputeLocalState(peer.store, query, seed);
    seed = policy.ComputeGlobalState(query, seed, local);
    if (seed.m >= query.k) break;
    // Continue into the unwalked link whose region promises the best
    // tuples (Algorithm 9's priority).
    PeerId next = kInvalidPeer;
    double best = -std::numeric_limits<double>::infinity();
    for (const auto& link : peer.links) {
      if (walked.count(link.target)) continue;
      const double bound = query.scorer->UpperBound(link.region);
      if (next == kInvalidPeer || bound > best) {
        best = bound;
        next = link.target;
      }
    }
    if (next == kInvalidPeer) break;
    current = next;
  }
  return seed;
}

template <typename Overlay, typename EngineT>
typename EngineT::Result SeededTopK(const Overlay& overlay,
                                    const EngineT& engine,
                                    const QueryRequest<TopKPolicy>& request) {
  QueryStats bootstrap;
  const TopKPolicy& policy = engine.policy();
  obs::Tracer* tracer = engine.tracer();
  const TopKQuery& query = request.query;
  // Attach the engine's journal before the bootstrap spans are recorded:
  // the engine only wires tracer-to-journal mirroring inside Run(), which
  // comes after phases 1-2, and a sampled trace must cover them too.
  if (tracer != nullptr && engine.journal() != nullptr &&
      request.trace_id != 0) {
    tracer->SetJournal(engine.journal());
    tracer->set_trace_id(request.trace_id);
  }

  // Phase 1: route to the peer owning the score peak. With a tracer
  // attached, every forwarding peer gets a route span (one hop each,
  // chained), so the trace covers exactly the peers the stats charge.
  const Point peak = query.scorer->Peak(overlay.domain());
  uint64_t hops = 0;
  std::vector<PeerId> route_path;
  const PeerId start = overlay.RouteFrom(request.initiator, peak, &hops,
                                         tracer ? &route_path : nullptr);
  // Every bootstrap message (route forward, walk step) carries the query:
  // one query-only frame each, measured with the engines' codec.
  const uint64_t query_frame_bytes = net::MeasureFrameBytes(
      net::MessageKind::kQuery,
      [&](wire::Buffer* buf) { policy.EncodeQuery(query, buf); });
  bootstrap.latency_hops += hops;
  bootstrap.messages += hops;
  bootstrap.peers_visited += hops;  // forwarding peers handle the query
  bootstrap.bytes_on_wire += hops * query_frame_bytes;
  uint32_t last_span = obs::kNoSpan;
  if (tracer) {
    double t = 0.0;
    for (PeerId p : route_path) {
      last_span = tracer->StartSpan(p, last_span, obs::SpanKind::kRoute,
                                    /*r=*/0, t);
      tracer->span(last_span).links_forwarded = 1;
      tracer->EndSpan(last_span, t + 1.0);
      t += 1.0;
    }
  }

  // Phase 2: greedy walk gathering local states until k tuples are known
  // (the walk itself is shared with the live-overlay client). When the
  // caller already supplied a seed witnessing >= k tuples — the
  // initiator-side bound cache (cache/query_cache.h) — the walk is
  // skipped outright: the cached claim is at least as tight as anything
  // a walk could witness, and FOLDING a cached seed into walked states
  // would double-count overlapping tuple sets (Algorithm 7's counts only
  // add over disjoint sets), so it is one source or the other, never both.
  std::vector<PeerId> walk_path;
  TopKState seed;
  if (request.initial_state.has_value() &&
      request.initial_state->m >= query.k) {
    seed = *request.initial_state;
  } else {
    seed = TopKSeedWalk(overlay, policy, query, start, &walk_path);
  }
  for (size_t step = 0; step < walk_path.size(); ++step) {
    bootstrap.peers_visited += 1;
    if (step > 0) {
      bootstrap.latency_hops += 1;
      bootstrap.messages += 1;
      bootstrap.bytes_on_wire += query_frame_bytes;
    }
    if (tracer) {
      const double t = static_cast<double>(hops + step);
      last_span = tracer->StartSpan(walk_path[step], last_span,
                                    obs::SpanKind::kWalk, /*r=*/0, t);
      tracer->EndSpan(last_span, t + 1.0);
    }
  }

  // Phase 3: the RIPPLE run proper, seeded, initiated at the peak owner.
  // The engine counts hops from zero; shifting its trace clock by the
  // bootstrap latency splices both phases into one sequential timeline.
  double saved_offset = 0.0;
  if (tracer) {
    saved_offset = tracer->time_offset();
    tracer->set_time_offset(saved_offset +
                            static_cast<double>(bootstrap.latency_hops));
  }
  QueryRequest<TopKPolicy> seeded = request;
  seeded.initiator = start;
  seeded.initial_state = seed;
  auto result = engine.Run(seeded);
  if (tracer) tracer->set_time_offset(saved_offset);
  result.stats.latency_hops += bootstrap.latency_hops;
  result.stats.messages += bootstrap.messages;
  result.stats.peers_visited += bootstrap.peers_visited;
  result.stats.bytes_on_wire += bootstrap.bytes_on_wire;
  // Async runs report simulated wall-clock; the sequential bootstrap
  // happens before their clock starts.
  if (result.completion_time > 0) {
    result.completion_time += static_cast<double>(bootstrap.latency_hops);
  }
  return result;
}

}  // namespace ripple

#endif  // RIPPLE_QUERIES_TOPK_DRIVER_H_
