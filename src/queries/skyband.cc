#include "queries/skyband.h"

#include <algorithm>

namespace ripple {

TupleVec ComputeKSkyband(TupleVec tuples, size_t k) {
  if (tuples.empty() || k == 0) return {};
  // Dedup by id, then sort by coordinate sum: dominators of a tuple always
  // precede it in sum order, so one forward pass with counting suffices.
  std::sort(tuples.begin(), tuples.end(), TupleIdLess());
  tuples.erase(std::unique(tuples.begin(), tuples.end(),
                           [](const Tuple& a, const Tuple& b) {
                             return a.id == b.id;
                           }),
               tuples.end());
  auto sum_of = [](const Tuple& t) {
    double s = 0.0;
    for (int i = 0; i < t.key.dims(); ++i) s += t.key[i];
    return s;
  };
  std::stable_sort(tuples.begin(), tuples.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return sum_of(a) < sum_of(b);
                   });
  TupleVec band;
  for (size_t i = 0; i < tuples.size(); ++i) {
    size_t dominators = 0;
    for (size_t j = 0; j < i && dominators < k; ++j) {
      if (Dominates(tuples[j].key, tuples[i].key)) ++dominators;
    }
    if (dominators < k) band.push_back(tuples[i]);
  }
  std::sort(band.begin(), band.end(), TupleIdLess());
  return band;
}

SkybandPolicy::LocalState SkybandPolicy::ComputeLocalState(
    const LocalStore& store, const Query& q, const GlobalState& g) const {
  const TupleVec local_band = ComputeKSkyband(store.Snapshot(), q.band);
  // Keep local band members not already disqualified by the global state.
  TupleVec merged = local_band;
  merged.insert(merged.end(), g.tuples.begin(), g.tuples.end());
  merged = ComputeKSkyband(std::move(merged), q.band);
  LocalState l;
  for (const Tuple& t : local_band) {
    const auto it = std::lower_bound(
        merged.begin(), merged.end(), t.id,
        [](const Tuple& m, uint64_t v) { return m.id < v; });
    if (it != merged.end() && it->id == t.id) l.tuples.push_back(t);
  }
  return l;
}

SkybandPolicy::GlobalState SkybandPolicy::ComputeGlobalState(
    const Query& q, const GlobalState& g, const LocalState& l) const {
  TupleVec merged = g.tuples;
  merged.insert(merged.end(), l.tuples.begin(), l.tuples.end());
  GlobalState out;
  out.tuples = ComputeKSkyband(std::move(merged), q.band);
  out.dominators =
      SelectDominators(out.tuples, SkybandState::kMaxDominators);
  return out;
}

void SkybandPolicy::MergeLocalStates(
    const Query& q, LocalState* mine,
    const std::vector<LocalState>& received) const {
  TupleVec merged = std::move(mine->tuples);
  for (const LocalState& s : received) {
    merged.insert(merged.end(), s.tuples.begin(), s.tuples.end());
  }
  mine->tuples = ComputeKSkyband(std::move(merged), q.band);
}

SkybandPolicy::Answer SkybandPolicy::ComputeLocalAnswer(
    const LocalStore& store, const Query&, const LocalState& l) const {
  Answer a;
  for (const Tuple& t : l.tuples) {
    if (store.ContainsId(t.id)) a.push_back(t);
  }
  return a;
}

void SkybandPolicy::MergeAnswer(Answer* acc, Answer&& local,
                                const Query&) const {
  acc->insert(acc->end(), std::make_move_iterator(local.begin()),
              std::make_move_iterator(local.end()));
}

void SkybandPolicy::FinalizeAnswer(Answer* acc, const Query& q) const {
  *acc = ComputeKSkyband(std::move(*acc), q.band);
}

}  // namespace ripple
