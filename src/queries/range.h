#ifndef RIPPLE_QUERIES_RANGE_H_
#define RIPPLE_QUERIES_RANGE_H_

#include <limits>

#include "geom/point.h"
#include "geom/rect.h"
#include "geom/wire.h"
#include "ripple/policy.h"
#include "store/local_store.h"
#include "store/tuple.h"
#include "store/wire.h"

namespace ripple {

/// A range query: all tuples within distance `radius` of `center` — the
/// paper's introduction contrasts rank queries against exactly this case,
/// where the search area is explicit in the query. Expressed as a RIPPLE
/// policy it needs no state at all: a link is relevant iff its region
/// intersects the query ball, independent of anything retrieved so far.
/// Included to demonstrate the framework's generality (and as the
/// best-case baseline for pruning: the search area never shrinks).
struct RangeQuery {
  Point center;
  double radius = 0.0;
  Norm norm = Norm::kL2;

  bool Matches(const Point& p) const {
    return Distance(p, center, norm) <= radius;
  }
};

/// RIPPLE policy for range queries. States are empty; the restriction
/// areas alone steer the search.
class RangePolicy {
 public:
  using Query = RangeQuery;
  struct Empty {};
  using LocalState = Empty;
  using GlobalState = Empty;
  using Answer = TupleVec;

  GlobalState InitialGlobalState(const Query&) const { return {}; }
  LocalState ComputeLocalState(const LocalStore&, const Query&,
                               const GlobalState&) const {
    return {};
  }
  GlobalState ComputeGlobalState(const Query&, const GlobalState&,
                                 const LocalState&) const {
    return {};
  }
  void MergeLocalStates(const Query&, LocalState*,
                        const std::vector<LocalState>&) const {}

  Answer ComputeLocalAnswer(const LocalStore& store, const Query& q,
                            const LocalState&) const {
    Answer a;
    store.ForEach([&](const Tuple& t) {
      if (q.Matches(t.key)) a.push_back(t);
    });
    return a;
  }

  /// Relevant iff the area reaches into the query ball.
  template <typename Area>
  bool IsLinkRelevant(const Query& q, const GlobalState&,
                      const Area& area) const {
    bool relevant = false;
    ForEachRect(area, [&](const Rect& r) {
      if (r.MinDist(q.center, q.norm) <= q.radius) relevant = true;
    });
    return relevant;
  }

  template <typename Area>
  double LinkPriority(const Query& q, const Area& area) const {
    double best = std::numeric_limits<double>::infinity();
    ForEachRect(area, [&](const Rect& r) {
      best = std::min(best, r.MinDist(q.center, q.norm));
    });
    return -best;
  }

  size_t StateTupleCount(const LocalState&) const { return 0; }
  size_t GlobalStateTupleCount(const GlobalState&) const { return 0; }
  size_t AnswerTupleCount(const Answer& a) const { return a.size(); }

  void MergeAnswer(Answer* acc, Answer&& local, const Query&) const {
    acc->insert(acc->end(), std::make_move_iterator(local.begin()),
                std::make_move_iterator(local.end()));
  }
  void FinalizeAnswer(Answer* acc, const Query&) const {
    std::sort(acc->begin(), acc->end(), TupleIdLess());
  }

  // Wire codecs: [center][f64 radius][norm]; empty states occupy zero
  // bytes on the wire.
  void EncodeQuery(const Query& q, wire::Buffer* buf) const {
    EncodePoint(q.center, buf);
    buf->PutF64(q.radius);
    EncodeNorm(q.norm, buf);
  }
  bool DecodeQuery(wire::Reader* r, Query* out) const {
    if (!DecodePoint(r, &out->center)) return false;
    out->radius = r->F64();
    return r->ok() && DecodeNorm(r, &out->norm);
  }
  void EncodeState(const Empty&, wire::Buffer*) const {}
  bool DecodeState(wire::Reader* r, Empty*) const { return r->ok(); }
  void EncodeAnswer(const Answer& a, wire::Buffer* buf) const {
    EncodeTupleVec(a, buf);
  }
  bool DecodeAnswer(wire::Reader* r, Answer* out) const {
    return DecodeTupleVec(r, out);
  }
};

static_assert(QueryPolicy<RangePolicy, Rect>);

}  // namespace ripple

#endif  // RIPPLE_QUERIES_RANGE_H_
