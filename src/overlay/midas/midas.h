#ifndef RIPPLE_OVERLAY_MIDAS_MIDAS_H_
#define RIPPLE_OVERLAY_MIDAS_MIDAS_H_

#include <vector>

#include "common/bitstring.h"
#include "common/rng.h"
#include "common/status.h"
#include "geom/rect.h"
#include "geom/wire.h"
#include "overlay/types.h"
#include "store/local_store.h"

namespace ripple {

/// How a zone is split when a new peer joins. The split dimension always
/// alternates with depth (depth mod dims), which the §5.2 border patterns
/// rely on; the rule selects the split position.
enum class MidasSplitRule {
  /// Halve the zone geometrically. Data-independent; used by the latency
  /// lemma analyses and as the default.
  kMidpoint,
  /// Split at the median of the stored tuples along the split dimension
  /// (falling back to the midpoint for zones with fewer than two tuples).
  /// This is the load-balancing behavior of a data-bearing deployment:
  /// peers concentrate where tuples are, which is what keeps the number
  /// of query-relevant peers near the paper's d * n^(1/d) estimate.
  kDataMedian,
};

/// Construction options for a MIDAS overlay.
struct MidasOptions {
  int dims = 2;
  Rect domain;  // defaults to the unit cube when left default-constructed
  /// Enables the Section 5.2 structural optimization: link targets and
  /// back-link reassignment prefer peers whose ids match a border pattern.
  bool border_pattern_links = false;
  MidasSplitRule split_rule = MidasSplitRule::kMidpoint;
  uint64_t seed = 1;
};

/// The MIDAS overlay (Tsatsanifos et al., GeoInformatica 2013; paper §2.3):
/// peers are the leaves of a virtual k-d tree over the domain. A peer at
/// depth D keeps one link per sibling subtree rooted at depths 1..D; the
/// RIPPLE region of link i is the rectangle of that sibling subtree, so a
/// peer's link regions plus its own zone partition the entire domain.
///
/// Splits halve the zone at the midpoint of dimension (depth mod dims),
/// matching the alternating-dimension structure the border-pattern
/// optimization of §5.2 relies on.
///
/// This is a simulation-grade implementation: peers live in one process and
/// the virtual tree is materialized, but all query-time decisions use only
/// per-peer state (zone, links with regions, local tuples). Join and leave
/// perform the O(depth) link transfers of the real protocol.
class MidasOverlay {
 public:
  /// RIPPLE areas over MIDAS are k-d subtree rectangles.
  using Area = Rect;
  using Link = RectLink;

  struct Peer {
    BitString id;  // leaf id in the virtual k-d tree
    Rect zone;
    std::vector<Link> links;  // links[i] -> sibling subtree at depth i+1
    LocalStore store;
    bool alive = false;

    int depth() const { return id.size(); }
  };

  explicit MidasOverlay(const MidasOptions& options);

  // Not copyable (owns bulky per-peer state); movable.
  MidasOverlay(const MidasOverlay&) = delete;
  MidasOverlay& operator=(const MidasOverlay&) = delete;
  MidasOverlay(MidasOverlay&&) = default;
  MidasOverlay& operator=(MidasOverlay&&) = default;

  int dims() const { return options_.dims; }
  const Rect& domain() const { return options_.domain; }
  Area FullArea() const { return options_.domain; }

  /// Number of live peers.
  size_t NumPeers() const { return alive_count_; }

  /// Maximum live-peer depth == maximum number of links of any peer — the
  /// paper's Delta, upper-bounding the diameter (Lemma 1).
  int MaxDepth() const;

  const Peer& GetPeer(PeerId id) const;

  /// Ids of all live peers, ascending.
  std::vector<PeerId> LivePeers() const;

  /// A uniformly random live peer.
  PeerId RandomPeer(Rng* rng) const;

  /// Adds a peer: a uniformly random live peer is contacted and splits its
  /// zone — the MIDAS join protocol. Returns the new peer's id.
  PeerId Join();

  /// Adds a peer by splitting the zone responsible for `key`. Tests and
  /// benches use explicit keys to construct specific tree shapes (e.g.
  /// perfect trees for verifying Lemmas 1-3 exactly).
  PeerId JoinAt(const Point& key);

  /// Adds a peer by splitting `split_peer`'s zone.
  PeerId JoinSplitting(PeerId split_peer);

  /// Removes a peer; its zone merges back into the tree and its tuples move
  /// to the absorbing peer. Fails when it is the last live peer.
  Status Leave(PeerId id);

  /// Removes a uniformly random live peer (decreasing-stage churn driver).
  Status LeaveRandom(Rng* rng);

  /// Routes to the peer responsible for `p` and stores the tuple there.
  void InsertTuple(const Tuple& t);

  /// The peer responsible for point `p` (zone containment, half-open).
  PeerId ResponsiblePeer(const Point& p) const;

  /// Peer-level greedy routing from `from` towards the peer responsible for
  /// `p`, following link regions; `hops` (optional) receives the hop count.
  /// This is how a real MIDAS node performs lookups in O(depth).
  /// `path` (optional) receives the forwarding peers in order — `from`
  /// first, the destination excluded — so observability layers can
  /// attribute per-hop cost. Completed routes are recorded under
  /// "midas.route.*" in obs::Registry::Global() when globally enabled.
  PeerId RouteFrom(PeerId from, const Point& p, uint64_t* hops,
                   std::vector<PeerId>* path) const;
  PeerId RouteFrom(PeerId from, const Point& p, uint64_t* hops) const {
    return RouteFrom(from, p, hops, nullptr);
  }

  /// Area algebra for the RIPPLE engine: intersection with empty/degenerate
  /// results reported as false (subtree rects either nest or have disjoint
  /// interiors, so touching faces mean "no shared peers").
  static bool IntersectArea(const Area& a, const Area& b, Area* out);

  /// Area wire codec (docs/WIRE.md): a MIDAS area is a plain rectangle.
  void EncodeArea(const Area& area, wire::Buffer* buf) const {
    EncodeRect(area, buf);
  }
  bool DecodeArea(wire::Reader* r, Area* out) const {
    return DecodeRect(r, out);
  }

  /// Rectangle of the virtual-tree node identified by `prefix`.
  Rect SubtreeRect(const BitString& prefix) const;

  /// Total tuples stored across all live peers.
  size_t TotalTuples() const;

  /// Internal consistency check used by tests: verifies the virtual tree,
  /// zone partition, link regions and back-link registry.
  Status Validate() const;

 private:
  struct TreeNode {
    int parent = -1;
    int left = -1;   // children; -1 for leaf
    int right = -1;
    Rect rect;
    PeerId leaf_peer = kInvalidPeer;  // valid iff leaf
    bool IsLeaf() const { return left < 0; }
  };

  struct BackRef {
    PeerId from = kInvalidPeer;
    int link_index = 0;
    friend bool operator==(const BackRef& a, const BackRef& b) {
      return a.from == b.from && a.link_index == b.link_index;
    }
  };

  Peer& MutablePeer(PeerId id);
  PeerId AllocatePeer();
  int TreeNodeOfLeaf(PeerId id) const;

  /// Retargets every back-link of `old_target` to `new_target`.
  void ReassignBackLinks(PeerId old_target, PeerId new_target);
  void SetLinkTarget(PeerId owner, int link_index, PeerId target);
  void RemoveBackRef(PeerId target, const BackRef& ref);

  /// Applies the §5.2 rule after a split of `stay` (kept lower half) and
  /// `fresh` (new upper half): when exactly one of the two matches a border
  /// pattern, every back-link moves to the matching peer.
  void ApplyPatternRuleAfterSplit(PeerId stay, PeerId fresh);

  /// §5.2's link establishment rule: retargets each of `peer`'s links to a
  /// border-pattern peer within its sibling subtree when one exists (and
  /// the current target does not match). Bounded tree search per link.
  void PreferPatternTargets(PeerId peer);

  /// A leaf under `node` whose id matches a border pattern, or
  /// kInvalidPeer. `prefix` is the node's id; `budget` caps the number of
  /// tree nodes examined.
  PeerId FindPatternLeaf(int node, const BitString& prefix,
                         int* budget) const;

  /// The tree node materializing `prefix` (which must exist).
  int NodeOfPrefix(const BitString& prefix) const;

  MidasOptions options_;
  Rng rng_;
  std::vector<TreeNode> tree_;
  std::vector<int> free_tree_nodes_;
  std::vector<Peer> peers_;
  std::vector<std::vector<BackRef>> backlinks_;  // indexed by target peer
  std::vector<int> leaf_node_of_peer_;           // tree node of each peer
  std::vector<PeerId> free_peers_;
  size_t alive_count_ = 0;
  int root_ = 0;
};

}  // namespace ripple

#endif  // RIPPLE_OVERLAY_MIDAS_MIDAS_H_
