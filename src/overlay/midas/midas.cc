#include "overlay/midas/midas.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/log.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "overlay/midas/patterns.h"

namespace ripple {

MidasOverlay::MidasOverlay(const MidasOptions& options)
    : options_(options), rng_(options.seed) {
  RIPPLE_CHECK(options_.dims >= 1 && options_.dims <= kMaxDims);
  if (options_.domain.dims() == 0) {
    options_.domain = Rect::Unit(options_.dims);
  }
  RIPPLE_CHECK(options_.domain.dims() == options_.dims);
  // Bootstrap: a single peer owning the whole domain (the tree root).
  const PeerId first = AllocatePeer();
  Peer& p = peers_[first];
  p.id = BitString();
  p.zone = options_.domain;
  p.alive = true;
  tree_.push_back(TreeNode{});
  tree_[root_].rect = options_.domain;
  tree_[root_].leaf_peer = first;
  leaf_node_of_peer_[first] = root_;
  alive_count_ = 1;
}

MidasOverlay::Peer& MidasOverlay::MutablePeer(PeerId id) {
  RIPPLE_DCHECK(id < peers_.size() && peers_[id].alive);
  return peers_[id];
}

const MidasOverlay::Peer& MidasOverlay::GetPeer(PeerId id) const {
  RIPPLE_DCHECK(id < peers_.size() && peers_[id].alive);
  return peers_[id];
}

PeerId MidasOverlay::AllocatePeer() {
  if (!free_peers_.empty()) {
    const PeerId id = free_peers_.back();
    free_peers_.pop_back();
    peers_[id] = Peer{};
    backlinks_[id].clear();
    leaf_node_of_peer_[id] = -1;
    return id;
  }
  const PeerId id = static_cast<PeerId>(peers_.size());
  peers_.emplace_back();
  backlinks_.emplace_back();
  leaf_node_of_peer_.push_back(-1);
  return id;
}

int MidasOverlay::TreeNodeOfLeaf(PeerId id) const {
  return leaf_node_of_peer_[id];
}

int MidasOverlay::MaxDepth() const {
  int best = 0;
  for (const Peer& p : peers_) {
    if (p.alive) best = std::max(best, p.depth());
  }
  return best;
}

std::vector<PeerId> MidasOverlay::LivePeers() const {
  std::vector<PeerId> out;
  out.reserve(alive_count_);
  for (PeerId i = 0; i < peers_.size(); ++i) {
    if (peers_[i].alive) out.push_back(i);
  }
  return out;
}

PeerId MidasOverlay::RandomPeer(Rng* rng) const {
  RIPPLE_CHECK(alive_count_ > 0);
  for (;;) {
    const PeerId id =
        static_cast<PeerId>(rng->UniformU64(peers_.size()));
    if (peers_[id].alive) return id;
  }
}

Rect MidasOverlay::SubtreeRect(const BitString& prefix) const {
  // Split positions are data-dependent under kDataMedian, so rects come
  // from the materialized virtual tree: descend following the id bits.
  int node = root_;
  for (int t = 0; t < prefix.size(); ++t) {
    RIPPLE_CHECK(!tree_[node].IsLeaf() &&
                 "SubtreeRect: prefix deeper than the virtual tree");
    node = prefix.bit(t) ? tree_[node].right : tree_[node].left;
  }
  return tree_[node].rect;
}

PeerId MidasOverlay::ResponsiblePeer(const Point& p) const {
  RIPPLE_DCHECK(options_.domain.Contains(p));
  int node = root_;
  while (!tree_[node].IsLeaf()) {
    const TreeNode& left = tree_[tree_[node].left];
    node = left.rect.ContainsHalfOpen(p, options_.domain) ? tree_[node].left
                                                          : tree_[node].right;
  }
  return tree_[node].leaf_peer;
}

PeerId MidasOverlay::RouteFrom(PeerId from, const Point& p, uint64_t* hops,
                               std::vector<PeerId>* path) const {
  PeerId current = from;
  obs::RouteRecorder rec("midas", path);
  // Each hop strictly deepens the subtree shared with the target, so the
  // loop takes at most MaxDepth() iterations.
  for (size_t guard = 0; guard <= peers_.size(); ++guard) {
    const Peer& peer = GetPeer(current);
    if (peer.zone.ContainsHalfOpen(p, options_.domain)) {
      return rec.Arrive(current, hops);
    }
    PeerId next = kInvalidPeer;
    for (const Link& link : peer.links) {
      if (link.region.ContainsHalfOpen(p, options_.domain)) {
        next = link.target;
        break;
      }
    }
    RIPPLE_CHECK(next != kInvalidPeer);  // regions partition the domain
    current = rec.Step(current, next);
  }
  RIPPLE_CHECK(false && "MIDAS routing failed to converge");
  return kInvalidPeer;
}

void MidasOverlay::InsertTuple(const Tuple& t) {
  MutablePeer(ResponsiblePeer(t.key)).store.Add(t);
}

size_t MidasOverlay::TotalTuples() const {
  size_t total = 0;
  for (const Peer& p : peers_) {
    if (p.alive) total += p.store.size();
  }
  return total;
}

void MidasOverlay::SetLinkTarget(PeerId owner, int link_index, PeerId target) {
  Peer& p = MutablePeer(owner);
  RIPPLE_DCHECK(link_index >= 0 &&
                link_index < static_cast<int>(p.links.size()));
  p.links[link_index].target = target;
  backlinks_[target].push_back(BackRef{owner, link_index});
}

void MidasOverlay::RemoveBackRef(PeerId target, const BackRef& ref) {
  auto& refs = backlinks_[target];
  const auto it = std::find(refs.begin(), refs.end(), ref);
  RIPPLE_DCHECK(it != refs.end());
  *it = refs.back();
  refs.pop_back();
}

void MidasOverlay::ReassignBackLinks(PeerId old_target, PeerId new_target) {
  if (old_target == new_target) return;
  auto refs = std::move(backlinks_[old_target]);
  backlinks_[old_target].clear();
  for (const BackRef& ref : refs) {
    peers_[ref.from].links[ref.link_index].target = new_target;
    backlinks_[new_target].push_back(ref);
  }
}

void MidasOverlay::ApplyPatternRuleAfterSplit(PeerId stay, PeerId fresh) {
  if (!options_.border_pattern_links) return;
  const bool stay_matches =
      MatchesAnyBorderPattern(peers_[stay].id, options_.dims);
  const bool fresh_matches =
      MatchesAnyBorderPattern(peers_[fresh].id, options_.dims);
  // §5.2: when exactly one of the two new siblings obeys a pattern, all
  // back-links of the original peer move to the obeying one.
  if (fresh_matches && !stay_matches) {
    ReassignBackLinks(stay, fresh);
  }
  // When `stay` matches (or neither does), back-links already point at it.
}

int MidasOverlay::NodeOfPrefix(const BitString& prefix) const {
  int node = root_;
  for (int t = 0; t < prefix.size(); ++t) {
    RIPPLE_CHECK(!tree_[node].IsLeaf());
    node = prefix.bit(t) ? tree_[node].right : tree_[node].left;
  }
  return node;
}

PeerId MidasOverlay::FindPatternLeaf(int node, const BitString& prefix,
                                     int* budget) const {
  if (--(*budget) < 0) return kInvalidPeer;
  if (!PrefixCanMatchBorderPattern(prefix, options_.dims)) {
    return kInvalidPeer;
  }
  if (tree_[node].IsLeaf()) return tree_[node].leaf_peer;
  // The 0-child keeps every pattern alive; try it first.
  const PeerId left = FindPatternLeaf(tree_[node].left, prefix.Child(false),
                                      budget);
  if (left != kInvalidPeer) return left;
  return FindPatternLeaf(tree_[node].right, prefix.Child(true), budget);
}

void MidasOverlay::PreferPatternTargets(PeerId peer) {
  Peer& p = peers_[peer];
  for (int i = 0; i < static_cast<int>(p.links.size()); ++i) {
    const PeerId current = p.links[i].target;
    if (MatchesAnyBorderPattern(peers_[current].id, options_.dims)) continue;
    const BitString sibling = p.id.Prefix(i + 1).Sibling();
    int budget = 64;
    const PeerId candidate =
        FindPatternLeaf(NodeOfPrefix(sibling), sibling, &budget);
    if (candidate == kInvalidPeer || candidate == current) continue;
    RemoveBackRef(current, BackRef{peer, i});
    SetLinkTarget(peer, i, candidate);
  }
}

PeerId MidasOverlay::Join() {
  // The MIDAS join protocol: the newcomer contacts a uniformly random
  // existing peer, which splits its zone.
  return JoinSplitting(RandomPeer(&rng_));
}

PeerId MidasOverlay::JoinAt(const Point& key) {
  return JoinSplitting(ResponsiblePeer(key));
}

PeerId MidasOverlay::JoinSplitting(PeerId split_peer) {
  Peer& w = MutablePeer(split_peer);
  const int node = TreeNodeOfLeaf(split_peer);
  const int depth = w.id.size();
  const int dim = depth % options_.dims;
  double split_value = 0.5 * (w.zone.lo()[dim] + w.zone.hi()[dim]);
  if (options_.split_rule == MidasSplitRule::kDataMedian &&
      w.store.size() >= 2) {
    const double median = w.store.MedianAlong(dim);
    // The median must fall strictly inside the zone or the split would
    // leave one side empty of space.
    if (median > w.zone.lo()[dim] && median < w.zone.hi()[dim]) {
      split_value = median;
    }
  }
  const auto [lower, upper] = w.zone.Split(dim, split_value);

  const PeerId fresh_id = AllocatePeer();
  Peer& w2 = peers_[split_peer];  // re-reference: AllocatePeer may realloc
  Peer& n = peers_[fresh_id];

  // Identities and zones. Which physical peer takes which half is the
  // protocol's free choice (§5.2 builds on exactly this freedom): the
  // splitter keeps a random half and the newcomer takes the other.
  const bool splitter_keeps_lower = rng_.Bernoulli(0.5);
  n.id = w2.id.Child(splitter_keeps_lower);
  w2.id.Append(!splitter_keeps_lower);
  w2.zone = splitter_keeps_lower ? lower : upper;
  n.zone = splitter_keeps_lower ? upper : lower;
  n.alive = true;

  // Virtual tree: the leaf becomes internal with two leaf children.
  auto alloc_node = [&]() -> int {
    if (!free_tree_nodes_.empty()) {
      const int idx = free_tree_nodes_.back();
      free_tree_nodes_.pop_back();
      tree_[idx] = TreeNode{};
      return idx;
    }
    tree_.emplace_back();
    return static_cast<int>(tree_.size()) - 1;
  };
  const int left_node = alloc_node();
  const int right_node = alloc_node();
  const PeerId lower_peer = splitter_keeps_lower ? split_peer : fresh_id;
  const PeerId upper_peer = splitter_keeps_lower ? fresh_id : split_peer;
  tree_[left_node] = TreeNode{node, -1, -1, lower, lower_peer};
  tree_[right_node] = TreeNode{node, -1, -1, upper, upper_peer};
  tree_[node].left = left_node;
  tree_[node].right = right_node;
  tree_[node].leaf_peer = kInvalidPeer;
  leaf_node_of_peer_[lower_peer] = left_node;
  leaf_node_of_peer_[upper_peer] = right_node;

  // Data handoff: tuples now outside the splitter's shrunk zone move over.
  n.store.AddAll(w2.store.ExtractOutside(w2.zone, options_.domain));

  // Join protocol, link setup. The new peer copies the splitter's link
  // table: for every depth up to the old depth both peers see the same
  // sibling subtrees, hence the same regions and usable targets.
  n.links = w2.links;
  for (int i = 0; i < static_cast<int>(n.links.size()); ++i) {
    backlinks_[n.links[i].target].push_back(BackRef{fresh_id, i});
  }

  // §5.2 back-link reassignment considers only pre-existing links, whose
  // regions contain both siblings; the mutual links added below are pinned.
  ApplyPatternRuleAfterSplit(split_peer, fresh_id);
  if (options_.border_pattern_links) {
    // §5.2 link establishment: the newcomer's copied links (and the
    // splitter's) prefer border-pattern targets where available.
    PreferPatternTargets(fresh_id);
    PreferPatternTargets(split_peer);
  }

  // Mutual links at the new depth: each sibling's region is the other's
  // zone (the sibling subtree rooted at depth `depth + 1`).
  w2.links.push_back(Link{fresh_id, n.zone, depth + 1});
  backlinks_[fresh_id].push_back(
      BackRef{split_peer, static_cast<int>(w2.links.size()) - 1});
  n.links.push_back(Link{split_peer, w2.zone, depth + 1});
  backlinks_[split_peer].push_back(
      BackRef{fresh_id, static_cast<int>(n.links.size()) - 1});

  ++alive_count_;
  RIPPLE_LOG(kDebug, "midas: peer %u joined splitting %u (depth %d, dim %d)",
             fresh_id, split_peer, depth + 1, dim);
  return fresh_id;
}

Status MidasOverlay::Leave(PeerId id) {
  if (id >= peers_.size() || !peers_[id].alive) {
    return Status::NotFound("no such live peer");
  }
  if (alive_count_ <= 1) {
    return Status::FailedPrecondition("cannot remove the last peer");
  }

  const int node = TreeNodeOfLeaf(id);
  const int parent = tree_[node].parent;
  RIPPLE_CHECK(parent >= 0);
  const int sibling_node =
      tree_[parent].left == node ? tree_[parent].right : tree_[parent].left;

  // Merges sibling leaves `gone` and `absorber` into their parent node
  // `par`: the absorber takes over the parent zone, the departing peer's
  // tuples, and the back-links that pointed at it.
  auto merge_into_sibling = [&](PeerId gone, PeerId absorber, int par) {
    Peer& g = peers_[gone];
    Peer& a = peers_[absorber];
    // Drop the absorber's deepest link — it pointed at the departing peer.
    RIPPLE_CHECK(!a.links.empty());
    RIPPLE_CHECK(a.links.back().target == gone);
    RemoveBackRef(gone, BackRef{absorber,
                                static_cast<int>(a.links.size()) - 1});
    a.links.pop_back();
    // Unregister the departing peer's links.
    for (int i = 0; i < static_cast<int>(g.links.size()); ++i) {
      RemoveBackRef(g.links[i].target, BackRef{gone, i});
    }
    g.links.clear();
    // Zone and identity take-over.
    a.id = a.id.Parent();
    a.zone = tree_[par].rect;
    a.store.AddAll(g.store);
    g.store.Clear();
    // Everything that pointed at the departing peer now points at the
    // absorber (regions contained the whole parent subtree already).
    ReassignBackLinks(gone, absorber);
    // Collapse the tree node pair.
    free_tree_nodes_.push_back(tree_[par].left);
    free_tree_nodes_.push_back(tree_[par].right);
    tree_[par].left = -1;
    tree_[par].right = -1;
    tree_[par].leaf_peer = absorber;
    leaf_node_of_peer_[absorber] = par;
  };

  if (tree_[sibling_node].IsLeaf()) {
    // Case A: the sibling absorbs the departing peer directly.
    const PeerId absorber = tree_[sibling_node].leaf_peer;
    merge_into_sibling(id, absorber, parent);
  } else {
    // Case B: the sibling subtree is internal. Find a pair of sibling
    // leaves (u, v) inside it; v vacates its spot (u absorbs it) and then
    // assumes the departing peer's identity, zone, links and data.
    int probe = sibling_node;
    while (!tree_[tree_[probe].left].IsLeaf() ||
           !tree_[tree_[probe].right].IsLeaf()) {
      probe = tree_[tree_[probe].left].IsLeaf() ? tree_[probe].right
                                                : tree_[probe].left;
    }
    const PeerId u = tree_[tree_[probe].left].leaf_peer;
    const PeerId v = tree_[tree_[probe].right].leaf_peer;
    merge_into_sibling(v, u, probe);

    // v assumes d's position.
    Peer& d = peers_[id];
    Peer& rv = peers_[v];
    rv.id = d.id;
    rv.zone = d.zone;
    rv.store.Clear();
    rv.store.AddAll(d.store);
    d.store.Clear();
    rv.links = std::move(d.links);
    d.links.clear();
    for (int i = 0; i < static_cast<int>(rv.links.size()); ++i) {
      // Transfer back-ref ownership from d to v.
      RemoveBackRef(rv.links[i].target, BackRef{id, i});
      backlinks_[rv.links[i].target].push_back(BackRef{v, i});
    }
    ReassignBackLinks(id, v);
    tree_[node].leaf_peer = v;
    leaf_node_of_peer_[v] = node;
  }

  peers_[id].alive = false;
  leaf_node_of_peer_[id] = -1;
  RIPPLE_CHECK(backlinks_[id].empty());
  free_peers_.push_back(id);
  --alive_count_;
  return Status::OK();
}

Status MidasOverlay::LeaveRandom(Rng* rng) {
  if (alive_count_ <= 1) {
    return Status::FailedPrecondition("cannot remove the last peer");
  }
  return Leave(RandomPeer(rng));
}

bool MidasOverlay::IntersectArea(const Area& a, const Area& b, Area* out) {
  if (!a.Intersects(b)) return false;
  const Rect inter = a.Intersection(b);
  if (inter.Degenerate()) return false;  // face contact only
  *out = inter;
  return true;
}

Status MidasOverlay::Validate() const {
  size_t seen_alive = 0;
  double zone_volume = 0.0;
  for (PeerId id = 0; id < peers_.size(); ++id) {
    const Peer& p = peers_[id];
    if (!p.alive) continue;
    ++seen_alive;
    zone_volume += p.zone.Volume();
    // Zone must match the id-derived rectangle and the tree leaf.
    if (p.zone != SubtreeRect(p.id)) {
      return Status::Internal("zone does not match id-derived rect for peer " +
                              std::to_string(id));
    }
    const int node = leaf_node_of_peer_[id];
    if (node < 0 || !tree_[node].IsLeaf() || tree_[node].leaf_peer != id ||
        tree_[node].rect != p.zone) {
      return Status::Internal("tree leaf inconsistent for peer " +
                              std::to_string(id));
    }
    // One link per depth, with the correct region and an in-region target.
    if (static_cast<int>(p.links.size()) != p.depth()) {
      return Status::Internal("link count != depth for peer " +
                              std::to_string(id));
    }
    for (int i = 0; i < static_cast<int>(p.links.size()); ++i) {
      const Link& link = p.links[i];
      if (link.depth != i + 1) {
        return Status::Internal("bad link depth tag");
      }
      const BitString sibling = p.id.Prefix(i + 1).Sibling();
      if (link.region != SubtreeRect(sibling)) {
        return Status::Internal("link region mismatch for peer " +
                                std::to_string(id));
      }
      if (link.target >= peers_.size() || !peers_[link.target].alive) {
        return Status::Internal("link target dead");
      }
      if (!sibling.IsPrefixOf(peers_[link.target].id)) {
        return Status::Internal("link target outside its region");
      }
      // The back-link registry must know about this link.
      const auto& refs = backlinks_[link.target];
      if (std::find(refs.begin(), refs.end(), BackRef{id, i}) == refs.end()) {
        return Status::Internal("missing back-link registration");
      }
    }
    // Tuples must lie within the zone.
    const store::FlatStore& rows = p.store.flat();
    for (size_t r = 0; r < rows.size(); ++r) {
      if (!p.zone.ContainsHalfOpen(rows.PointAt(r), options_.domain)) {
        return Status::Internal("tuple outside owning zone");
      }
    }
  }
  if (seen_alive != alive_count_) {
    return Status::Internal("alive count mismatch");
  }
  if (std::abs(zone_volume - options_.domain.Volume()) >
      1e-9 * options_.domain.Volume()) {
    return Status::Internal("zones do not partition the domain");
  }
  // Every registered back-link must correspond to a real link.
  for (PeerId target = 0; target < peers_.size(); ++target) {
    for (const BackRef& ref : backlinks_[target]) {
      if (ref.from >= peers_.size() || !peers_[ref.from].alive) {
        return Status::Internal("back-link from dead peer");
      }
      const Peer& from = peers_[ref.from];
      if (ref.link_index >= static_cast<int>(from.links.size()) ||
          from.links[ref.link_index].target != target) {
        return Status::Internal("stale back-link registration");
      }
    }
  }
  return Status::OK();
}

}  // namespace ripple
