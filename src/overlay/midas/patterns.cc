#include "overlay/midas/patterns.h"

#include "common/check.h"

namespace ripple {

bool MatchesBorderPattern(const BitString& id, int dims, int j) {
  RIPPLE_CHECK(dims >= 1);
  RIPPLE_CHECK(j >= 0 && j < dims);
  for (int pos = 0; pos < id.size(); ++pos) {
    if (pos % dims == j) continue;  // free position (X)
    if (id.bit(pos)) return false;  // must be 0
  }
  return true;
}

bool MatchesAnyBorderPattern(const BitString& id, int dims) {
  for (int j = 0; j < dims; ++j) {
    if (MatchesBorderPattern(id, dims, j)) return true;
  }
  return false;
}

bool PrefixCanMatchBorderPattern(const BitString& prefix, int dims) {
  // A prefix constrains the same positions the full id would; if the prefix
  // matches some pattern, extensions that keep the constrained positions at
  // zero also match. If it matches none, no extension can (paper, §5.2).
  return MatchesAnyBorderPattern(prefix, dims);
}

}  // namespace ripple
