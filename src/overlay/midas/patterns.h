#ifndef RIPPLE_OVERLAY_MIDAS_PATTERNS_H_
#define RIPPLE_OVERLAY_MIDAS_PATTERNS_H_

#include "common/bitstring.h"

namespace ripple {

/// Border-pattern tests for the MIDAS skyline optimization (paper, §5.2).
///
/// With midpoint splits whose dimension alternates sequentially with depth
/// (depth t splits dimension t mod D), a leaf id matches pattern
///   p_j = (0...0 X 0...0)* ...   (X at in-round position j)
/// exactly when its zone touches the lower domain boundary in every
/// dimension except possibly dimension j. Peers with such ids are the ones
/// that can host skyline tuples near the domain borders, so the optimized
/// overlay prefers them as link targets.

/// True when `id` matches border pattern p_j for the given dimension j.
bool MatchesBorderPattern(const BitString& id, int dims, int j);

/// True when `id` matches any of the D border patterns p_0 .. p_{D-1}.
bool MatchesAnyBorderPattern(const BitString& id, int dims);

/// True when some descendant of the node `prefix` can match a pattern,
/// i.e. `prefix` itself matches when truncated (a non-matching prefix can
/// never produce matching descendants — its id prefixes all of them).
bool PrefixCanMatchBorderPattern(const BitString& prefix, int dims);

}  // namespace ripple

#endif  // RIPPLE_OVERLAY_MIDAS_PATTERNS_H_
