#include "overlay/can/can.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace ripple {

CanOverlay::CanOverlay(const CanOptions& options)
    : options_(options), rng_(options.seed) {
  RIPPLE_CHECK(options_.dims >= 1 && options_.dims <= kMaxDims);
  if (options_.domain.dims() == 0) {
    options_.domain = Rect::Unit(options_.dims);
  }
  RIPPLE_CHECK(options_.domain.dims() == options_.dims);
  const PeerId first = AllocatePeer();
  peers_[first].zone = options_.domain;
  peers_[first].alive = true;
  tree_.push_back(TreeNode{});
  tree_[root_].rect = options_.domain;
  tree_[root_].leaf_peer = first;
  leaf_node_of_peer_[first] = root_;
  alive_count_ = 1;
}

PeerId CanOverlay::AllocatePeer() {
  if (!free_peers_.empty()) {
    const PeerId id = free_peers_.back();
    free_peers_.pop_back();
    peers_[id] = Peer{};
    leaf_node_of_peer_[id] = -1;
    return id;
  }
  const PeerId id = static_cast<PeerId>(peers_.size());
  peers_.emplace_back();
  leaf_node_of_peer_.push_back(-1);
  return id;
}

int CanOverlay::AllocateNode() {
  if (!free_tree_nodes_.empty()) {
    const int idx = free_tree_nodes_.back();
    free_tree_nodes_.pop_back();
    tree_[idx] = TreeNode{};
    return idx;
  }
  tree_.emplace_back();
  return static_cast<int>(tree_.size()) - 1;
}

const CanOverlay::Peer& CanOverlay::GetPeer(PeerId id) const {
  RIPPLE_DCHECK(id < peers_.size() && peers_[id].alive);
  return peers_[id];
}

std::vector<PeerId> CanOverlay::LivePeers() const {
  std::vector<PeerId> out;
  out.reserve(alive_count_);
  for (PeerId i = 0; i < peers_.size(); ++i) {
    if (peers_[i].alive) out.push_back(i);
  }
  return out;
}

PeerId CanOverlay::RandomPeer(Rng* rng) const {
  RIPPLE_CHECK(alive_count_ > 0);
  for (;;) {
    const PeerId id = static_cast<PeerId>(rng->UniformU64(peers_.size()));
    if (peers_[id].alive) return id;
  }
}

bool CanOverlay::AreNeighbors(const Rect& a, const Rect& b) const {
  int abutting = 0;
  for (int d = 0; d < options_.dims; ++d) {
    const double overlap =
        std::min(a.hi()[d], b.hi()[d]) - std::max(a.lo()[d], b.lo()[d]);
    if (overlap > 0) continue;  // positive-extent overlap in this dimension
    if (overlap == 0 && (a.hi()[d] == b.lo()[d] || b.hi()[d] == a.lo()[d])) {
      ++abutting;
      continue;
    }
    return false;  // disjoint along this dimension
  }
  return abutting == 1;
}

void CanOverlay::Unlink(PeerId a, PeerId b) {
  auto drop = [](std::vector<PeerId>* v, PeerId x) {
    const auto it = std::find(v->begin(), v->end(), x);
    if (it != v->end()) {
      *it = v->back();
      v->pop_back();
    }
  };
  drop(&peers_[a].neighbors, b);
  drop(&peers_[b].neighbors, a);
}

void CanOverlay::RefreshNeighbors(PeerId peer,
                                  const std::vector<PeerId>& candidates) {
  Peer& p = peers_[peer];
  // Drop stale entries on both sides first.
  const std::vector<PeerId> old = p.neighbors;
  for (PeerId nb : old) {
    if (!peers_[nb].alive || !AreNeighbors(p.zone, peers_[nb].zone)) {
      Unlink(peer, nb);
    }
  }
  // Add new adjacencies from the candidate set.
  for (PeerId c : candidates) {
    if (c == peer || !peers_[c].alive) continue;
    if (!AreNeighbors(p.zone, peers_[c].zone)) continue;
    if (std::find(p.neighbors.begin(), p.neighbors.end(), c) !=
        p.neighbors.end()) {
      continue;
    }
    p.neighbors.push_back(c);
    peers_[c].neighbors.push_back(peer);
  }
}

PeerId CanOverlay::Join() {
  Point key(options_.dims);
  for (int d = 0; d < options_.dims; ++d) {
    key[d] = rng_.UniformDouble(options_.domain.lo()[d],
                                options_.domain.hi()[d]);
  }
  const PeerId owner = ResponsiblePeer(key);
  const int node = leaf_node_of_peer_[owner];
  const PeerId fresh = AllocatePeer();
  Peer& w = peers_[owner];
  Peer& n = peers_[fresh];

  const int dim = w.depth % options_.dims;
  const double mid = 0.5 * (w.zone.lo()[dim] + w.zone.hi()[dim]);
  const auto [lower, upper] = w.zone.Split(dim, mid);
  // The newcomer takes the half containing its key point.
  const bool fresh_takes_lower = lower.ContainsHalfOpen(key, options_.domain);
  const Rect w_zone = fresh_takes_lower ? upper : lower;
  const Rect n_zone = fresh_takes_lower ? lower : upper;

  const int left_node = AllocateNode();
  const int right_node = AllocateNode();
  tree_[left_node] = TreeNode{node, -1, -1, lower,
                              fresh_takes_lower ? fresh : owner};
  tree_[right_node] = TreeNode{node, -1, -1, upper,
                               fresh_takes_lower ? owner : fresh};
  tree_[node].left = left_node;
  tree_[node].right = right_node;
  tree_[node].leaf_peer = kInvalidPeer;
  leaf_node_of_peer_[owner] = fresh_takes_lower ? right_node : left_node;
  leaf_node_of_peer_[fresh] = fresh_takes_lower ? left_node : right_node;

  w.zone = w_zone;
  n.zone = n_zone;
  n.depth = w.depth = w.depth + 1;
  n.alive = true;
  n.store.AddAll(w.store.ExtractOutside(w.zone, options_.domain));

  // Neighbor maintenance: the newcomer's neighbors are a subset of the
  // splitter's old neighbors plus the splitter itself (real CAN hands over
  // exactly this candidate list).
  std::vector<PeerId> candidates = w.neighbors;
  candidates.push_back(owner);
  candidates.push_back(fresh);
  RefreshNeighbors(owner, candidates);
  RefreshNeighbors(fresh, candidates);

  ++alive_count_;
  return fresh;
}

void CanOverlay::MergeIntoSibling(PeerId gone, PeerId absorber,
                                  int parent_node) {
  Peer& g = peers_[gone];
  Peer& a = peers_[absorber];
  a.zone = tree_[parent_node].rect;
  a.depth -= 1;
  a.store.AddAll(g.store);
  g.store.Clear();
  // Candidates for the merged zone: both former neighbor sets.
  std::vector<PeerId> candidates = a.neighbors;
  candidates.insert(candidates.end(), g.neighbors.begin(), g.neighbors.end());
  // Detach the departing peer from everyone.
  const std::vector<PeerId> gone_neighbors = g.neighbors;
  for (PeerId nb : gone_neighbors) Unlink(gone, nb);
  free_tree_nodes_.push_back(tree_[parent_node].left);
  free_tree_nodes_.push_back(tree_[parent_node].right);
  tree_[parent_node].left = -1;
  tree_[parent_node].right = -1;
  tree_[parent_node].leaf_peer = absorber;
  leaf_node_of_peer_[absorber] = parent_node;
  RefreshNeighbors(absorber, candidates);
}

Status CanOverlay::Leave(PeerId id) {
  if (id >= peers_.size() || !peers_[id].alive) {
    return Status::NotFound("no such live peer");
  }
  if (alive_count_ <= 1) {
    return Status::FailedPrecondition("cannot remove the last peer");
  }
  const int node = leaf_node_of_peer_[id];
  const int parent = tree_[node].parent;
  const int sibling =
      tree_[parent].left == node ? tree_[parent].right : tree_[parent].left;

  if (tree_[sibling].IsLeaf()) {
    MergeIntoSibling(id, tree_[sibling].leaf_peer, parent);
  } else {
    // Take-over: find a sibling-leaf pair (u, v) in the sibling subtree;
    // v vacates (u absorbs) and then assumes the departing peer's zone.
    int probe = sibling;
    while (!tree_[tree_[probe].left].IsLeaf() ||
           !tree_[tree_[probe].right].IsLeaf()) {
      probe = tree_[tree_[probe].left].IsLeaf() ? tree_[probe].right
                                                : tree_[probe].left;
    }
    const PeerId u = tree_[tree_[probe].left].leaf_peer;
    const PeerId v = tree_[tree_[probe].right].leaf_peer;
    MergeIntoSibling(v, u, probe);

    Peer& d = peers_[id];
    Peer& rv = peers_[v];
    rv.zone = d.zone;
    rv.depth = d.depth;
    rv.store.Clear();
    rv.store.AddAll(d.store);
    d.store.Clear();
    tree_[node].leaf_peer = v;
    leaf_node_of_peer_[v] = node;
    // v inherits the departing peer's adjacency.
    std::vector<PeerId> candidates = d.neighbors;
    const std::vector<PeerId> old = d.neighbors;
    for (PeerId nb : old) Unlink(id, nb);
    RefreshNeighbors(v, candidates);
  }

  peers_[id].alive = false;
  peers_[id].neighbors.clear();
  leaf_node_of_peer_[id] = -1;
  free_peers_.push_back(id);
  --alive_count_;
  return Status::OK();
}

Status CanOverlay::LeaveRandom(Rng* rng) {
  if (alive_count_ <= 1) {
    return Status::FailedPrecondition("cannot remove the last peer");
  }
  return Leave(RandomPeer(rng));
}

PeerId CanOverlay::ResponsiblePeer(const Point& p) const {
  int node = root_;
  while (!tree_[node].IsLeaf()) {
    const TreeNode& left = tree_[tree_[node].left];
    node = left.rect.ContainsHalfOpen(p, options_.domain) ? tree_[node].left
                                                          : tree_[node].right;
  }
  return tree_[node].leaf_peer;
}

void CanOverlay::InsertTuple(const Tuple& t) {
  peers_[ResponsiblePeer(t.key)].store.Add(t);
}

size_t CanOverlay::TotalTuples() const {
  size_t total = 0;
  for (const Peer& p : peers_) {
    if (p.alive) total += p.store.size();
  }
  return total;
}

PeerId CanOverlay::RouteFrom(PeerId from, const Point& p, uint64_t* hops,
                             std::vector<PeerId>* path) const {
  PeerId current = from;
  obs::RouteRecorder rec("can", path);
  for (size_t guard = 0; guard <= peers_.size(); ++guard) {
    const Peer& peer = GetPeer(current);
    if (peer.zone.ContainsHalfOpen(p, options_.domain)) {
      return rec.Arrive(current, hops);
    }
    // Greedy: the neighbor whose zone is closest to the target. Distance
    // strictly decreases in a CAN grid, so this terminates.
    PeerId next = kInvalidPeer;
    double best = std::numeric_limits<double>::infinity();
    for (PeerId nb : peer.neighbors) {
      const double d = peers_[nb].zone.MinDist(p, Norm::kL2);
      if (d < best || (d == best && (next == kInvalidPeer || nb < next))) {
        best = d;
        next = nb;
      }
    }
    RIPPLE_CHECK(next != kInvalidPeer);
    current = rec.Step(current, next);
  }
  RIPPLE_CHECK(false && "CAN routing failed to converge");
  return kInvalidPeer;
}

Status CanOverlay::Validate() const {
  size_t seen_alive = 0;
  double volume = 0.0;
  for (PeerId id = 0; id < peers_.size(); ++id) {
    const Peer& p = peers_[id];
    if (!p.alive) continue;
    ++seen_alive;
    volume += p.zone.Volume();
    const int node = leaf_node_of_peer_[id];
    if (node < 0 || !tree_[node].IsLeaf() || tree_[node].leaf_peer != id ||
        tree_[node].rect != p.zone) {
      return Status::Internal("tree leaf inconsistent for peer " +
                              std::to_string(id));
    }
    // Neighbor lists must be exact and symmetric.
    for (PeerId nb : p.neighbors) {
      if (nb >= peers_.size() || !peers_[nb].alive) {
        return Status::Internal("dead neighbor");
      }
      if (!AreNeighbors(p.zone, peers_[nb].zone)) {
        return Status::Internal("non-adjacent neighbor entry");
      }
      const auto& back = peers_[nb].neighbors;
      if (std::find(back.begin(), back.end(), id) == back.end()) {
        return Status::Internal("asymmetric neighbor entry");
      }
    }
    // Exactness: every adjacent live peer must be listed.
    for (PeerId other = 0; other < peers_.size(); ++other) {
      if (other == id || !peers_[other].alive) continue;
      const bool adjacent = AreNeighbors(p.zone, peers_[other].zone);
      const bool listed = std::find(p.neighbors.begin(), p.neighbors.end(),
                                    other) != p.neighbors.end();
      if (adjacent != listed) {
        return Status::Internal("neighbor set mismatch between peers " +
                                std::to_string(id) + " and " +
                                std::to_string(other));
      }
    }
    const store::FlatStore& rows = p.store.flat();
    for (size_t r = 0; r < rows.size(); ++r) {
      if (!p.zone.ContainsHalfOpen(rows.PointAt(r), options_.domain)) {
        return Status::Internal("tuple outside owning zone");
      }
    }
  }
  if (seen_alive != alive_count_) return Status::Internal("alive count");
  if (std::abs(volume - options_.domain.Volume()) >
      1e-9 * options_.domain.Volume()) {
    return Status::Internal("zones do not partition the domain");
  }
  return Status::OK();
}

}  // namespace ripple
