#ifndef RIPPLE_OVERLAY_CAN_CAN_H_
#define RIPPLE_OVERLAY_CAN_CAN_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geom/rect.h"
#include "overlay/types.h"
#include "store/local_store.h"

namespace ripple {

/// Construction options for a CAN overlay.
struct CanOptions {
  int dims = 2;
  Rect domain;  // defaults to the unit cube
  uint64_t seed = 1;
};

/// A Content-Addressable Network (Ratnasamy et al., SIGCOMM 2001): the
/// d-dimensional domain is partitioned into one zone per peer; two peers
/// are neighbors when their zones abut along exactly one dimension and
/// overlap along the other d-1 (paper, Sections 2.2 and 3.1). Routing is
/// greedy towards the target point through neighbor zones.
///
/// CAN hosts the DSL skyline baseline and the adapted streaming
/// diversification baseline. Zones are maintained with midpoint splits in
/// round-robin dimension order, so the partition forms a binary split tree
/// used for O(log n) ownership lookups and for departure take-overs.
class CanOverlay {
 public:
  struct Peer {
    Rect zone;
    int depth = 0;  // splits from the root, drives the next split dimension
    std::vector<PeerId> neighbors;
    LocalStore store;
    bool alive = false;
  };

  explicit CanOverlay(const CanOptions& options);

  CanOverlay(const CanOverlay&) = delete;
  CanOverlay& operator=(const CanOverlay&) = delete;
  CanOverlay(CanOverlay&&) = default;
  CanOverlay& operator=(CanOverlay&&) = default;

  int dims() const { return options_.dims; }
  const Rect& domain() const { return options_.domain; }
  size_t NumPeers() const { return alive_count_; }

  const Peer& GetPeer(PeerId id) const;
  std::vector<PeerId> LivePeers() const;
  PeerId RandomPeer(Rng* rng) const;

  /// Adds a peer: a random point is drawn and the responsible zone is split
  /// in half; the newcomer takes the half containing the point.
  PeerId Join();

  /// Removes a peer; a take-over peer merges the vacated zone. Fails for
  /// the last live peer.
  Status Leave(PeerId id);
  Status LeaveRandom(Rng* rng);

  void InsertTuple(const Tuple& t);
  PeerId ResponsiblePeer(const Point& p) const;
  size_t TotalTuples() const;

  /// Greedy CAN routing from `from` to the peer responsible for `p`;
  /// `hops` (optional) receives the number of forwards. `path` (optional)
  /// receives the forwarding peers in order (destination excluded);
  /// completed routes are recorded under "can.route.*" in
  /// obs::Registry::Global() when globally enabled.
  PeerId RouteFrom(PeerId from, const Point& p, uint64_t* hops,
                   std::vector<PeerId>* path) const;
  PeerId RouteFrom(PeerId from, const Point& p, uint64_t* hops) const {
    return RouteFrom(from, p, hops, nullptr);
  }

  /// Breadth-first flood over the neighbor graph starting at `from` —
  /// the spanning broadcast the naive/baseline methods rely on. Calls
  /// `visit(peer_id, bfs_depth)` for every live peer exactly once (the
  /// initiator at depth 0) and returns the maximum depth (flood latency).
  template <typename Visitor>
  uint64_t Flood(PeerId from, Visitor&& visit) const;

  /// Structural self-check for tests: zone partition, symmetric and exact
  /// neighbor sets, tuple placement.
  Status Validate() const;

 private:
  struct TreeNode {
    int parent = -1;
    int left = -1;
    int right = -1;
    Rect rect;
    PeerId leaf_peer = kInvalidPeer;
    bool IsLeaf() const { return left < 0; }
  };

  PeerId AllocatePeer();
  int AllocateNode();
  /// True when zones a and b abut along one dimension and overlap with
  /// positive extent along all others.
  bool AreNeighbors(const Rect& a, const Rect& b) const;
  /// Recomputes `peer`'s adjacency against `candidates`, updating both
  /// sides' neighbor lists.
  void RefreshNeighbors(PeerId peer, const std::vector<PeerId>& candidates);
  void Unlink(PeerId a, PeerId b);
  /// Sibling-leaf merge: `absorber` takes over the parent zone of `gone`.
  void MergeIntoSibling(PeerId gone, PeerId absorber, int parent_node);

  CanOptions options_;
  Rng rng_;
  std::vector<TreeNode> tree_;
  std::vector<int> free_tree_nodes_;
  std::vector<Peer> peers_;
  std::vector<int> leaf_node_of_peer_;
  std::vector<PeerId> free_peers_;
  size_t alive_count_ = 0;
  int root_ = 0;
};

// ---------------------------------------------------------------------------
// Implementation details only below here.
// ---------------------------------------------------------------------------

template <typename Visitor>
uint64_t CanOverlay::Flood(PeerId from, Visitor&& visit) const {
  std::vector<uint8_t> seen(peers_.size(), 0);
  std::vector<std::pair<PeerId, uint64_t>> frontier = {{from, 0}};
  seen[from] = 1;
  uint64_t max_depth = 0;
  size_t head = 0;
  while (head < frontier.size()) {
    const auto [id, depth] = frontier[head++];
    visit(id, depth);
    max_depth = std::max(max_depth, depth);
    for (PeerId nb : peers_[id].neighbors) {
      if (!seen[nb]) {
        seen[nb] = 1;
        frontier.emplace_back(nb, depth + 1);
      }
    }
  }
  return max_depth;
}

}  // namespace ripple

#endif  // RIPPLE_OVERLAY_CAN_CAN_H_
