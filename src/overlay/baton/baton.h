#ifndef RIPPLE_OVERLAY_BATON_BATON_H_
#define RIPPLE_OVERLAY_BATON_BATON_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geom/zorder.h"
#include "overlay/types.h"
#include "store/local_store.h"

namespace ripple {

/// Construction options for a BATON overlay.
struct BatonOptions {
  int dims = 2;
  Rect domain;       // defaults to the unit cube
  int bits_per_dim = 0;  // 0: ZOrder default (62 / dims)
};

/// BATON (Jagadish et al., VLDB 2005): a balanced binary tree in which
/// *every* node — internal and leaf — is a peer. Peers own contiguous
/// ranges of a one-dimensional key space assigned by in-order traversal;
/// multi-dimensional tuples are mapped onto that space with a Z-curve,
/// exactly as SSP does (paper, Section 2.2).
///
/// Each peer links to its parent, children, in-order adjacent peers, and
/// left/right routing tables holding same-level peers at distances
/// 2^0, 2^1, ... — giving O(log n) routing.
///
/// The real protocol keeps the tree balanced under churn via rotations; we
/// construct the balanced tree directly at each measured network size
/// (which is the state the rotations guarantee), so growth sweeps rebuild
/// rather than mutate. Ranges are uniform slices of the key space.
class BatonOverlay {
 public:
  struct Peer {
    int level = 0;      // root is level 0
    int pos = 0;        // position within the level, 0-based
    uint64_t range_lo = 0;  // key range [range_lo, range_hi)
    uint64_t range_hi = 0;
    PeerId parent = kInvalidPeer;
    PeerId left_child = kInvalidPeer;
    PeerId right_child = kInvalidPeer;
    PeerId adj_left = kInvalidPeer;   // in-order predecessor
    PeerId adj_right = kInvalidPeer;  // in-order successor
    std::vector<PeerId> left_table;   // same level, pos - 2^j
    std::vector<PeerId> right_table;  // same level, pos + 2^j
    LocalStore store;
  };

  /// Builds a BATON network of `num_peers` peers.
  BatonOverlay(size_t num_peers, const BatonOptions& options);

  BatonOverlay(const BatonOverlay&) = delete;
  BatonOverlay& operator=(const BatonOverlay&) = delete;
  BatonOverlay(BatonOverlay&&) = default;
  BatonOverlay& operator=(BatonOverlay&&) = default;

  int dims() const { return zorder_.dims(); }
  const Rect& domain() const { return zorder_.domain(); }
  const ZOrder& zorder() const { return zorder_; }
  size_t NumPeers() const { return peers_.size(); }

  const Peer& GetPeer(PeerId id) const;
  PeerId RandomPeer(Rng* rng) const;

  void InsertTuple(const Tuple& t);
  size_t TotalTuples() const;

  /// Re-balances key ranges to the quantiles of the given tuples' Z-keys —
  /// BATON's load-balancing (peers adjust ranges so data spreads evenly,
  /// which is what lets the origin-region peer of SSP cover the whole
  /// sparse area below the data). Stored tuples are redistributed; the
  /// in-order structure and all links stay as they are.
  void RebalanceToData(const TupleVec& tuples);

  /// The peer owning Z-key `key`.
  PeerId ResponsibleForKey(uint64_t key) const;
  /// The peer owning the Z-image of point `p`.
  PeerId ResponsiblePeer(const Point& p) const;

  /// BATON routing from `from` to the owner of `key`; every hop goes to a
  /// linked peer (routing tables / children / parent / adjacent).
  /// `path` (optional) receives the forwarding peers in order (destination
  /// excluded); completed routes are recorded under "baton.route.*" in
  /// obs::Registry::Global() when globally enabled.
  PeerId RouteToKey(PeerId from, uint64_t key, uint64_t* hops,
                    std::vector<PeerId>* path) const;
  PeerId RouteToKey(PeerId from, uint64_t key, uint64_t* hops) const {
    return RouteToKey(from, key, hops, nullptr);
  }

  /// The multi-dimensional region a peer is responsible for: the Z-curve
  /// decomposition of its key range into maximal aligned rectangles.
  /// Computed lazily and cached (ranges are immutable after construction).
  const std::vector<Rect>& RegionOf(PeerId id) const;

  /// Structural self-check: ranges partition the key space in in-order
  /// sequence, links are symmetric, routing tables match positions.
  Status Validate() const;

 private:
  /// 1-based heap index of (level, pos) is 2^level + pos; PeerId is that
  /// minus one, so peers 0..n-1 fill the tree top-down, left-to-right.
  static PeerId HeapId(int level, int pos) {
    return static_cast<PeerId>((1u << level) + pos - 1);
  }
  bool Exists(int level, int pos) const {
    return pos >= 0 && pos < (1 << level) &&
           HeapId(level, pos) < peers_.size();
  }

  void AssignRangesInOrder();

  ZOrder zorder_;
  std::vector<Peer> peers_;
  /// Peers sorted by range_lo for O(log n) ownership lookups in the
  /// simulator (a real peer routes instead).
  std::vector<PeerId> inorder_;
  mutable std::vector<std::vector<Rect>> region_cache_;
  mutable std::vector<uint8_t> region_cached_;
};

}  // namespace ripple

#endif  // RIPPLE_OVERLAY_BATON_BATON_H_
