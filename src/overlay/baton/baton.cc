#include "overlay/baton/baton.h"

#include <algorithm>

#include "common/check.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace ripple {

BatonOverlay::BatonOverlay(size_t num_peers, const BatonOptions& options)
    : zorder_(options.dims,
              options.domain.dims() == 0 ? Rect::Unit(options.dims)
                                         : options.domain,
              options.bits_per_dim) {
  RIPPLE_CHECK(num_peers >= 1);
  peers_.resize(num_peers);
  // Topology: peers 0..n-1 laid out as a complete binary tree (heap order).
  for (PeerId id = 0; id < num_peers; ++id) {
    Peer& p = peers_[id];
    const uint32_t heap = id + 1;  // 1-based heap index
    int level = 0;
    while ((2u << level) <= heap) ++level;
    p.level = level;
    p.pos = static_cast<int>(heap - (1u << level));
    const uint32_t parent_heap = heap / 2;
    p.parent = heap == 1 ? kInvalidPeer : parent_heap - 1;
    const uint32_t lc = heap * 2, rc = heap * 2 + 1;
    p.left_child = lc <= num_peers ? lc - 1 : kInvalidPeer;
    p.right_child = rc <= num_peers ? rc - 1 : kInvalidPeer;
    // Left/right routing tables: same level, positions pos -/+ 2^j.
    for (int j = 0; (1 << j) < (1 << level); ++j) {
      const int d = 1 << j;
      if (Exists(level, p.pos - d)) {
        p.left_table.push_back(HeapId(level, p.pos - d));
      }
      if (Exists(level, p.pos + d)) {
        p.right_table.push_back(HeapId(level, p.pos + d));
      }
    }
  }
  AssignRangesInOrder();
}

void BatonOverlay::AssignRangesInOrder() {
  // In-order traversal of the heap-shaped tree.
  inorder_.clear();
  inorder_.reserve(peers_.size());
  std::vector<std::pair<PeerId, bool>> stack;  // (node, expanded)
  stack.emplace_back(0, false);
  while (!stack.empty()) {
    auto [id, expanded] = stack.back();
    stack.pop_back();
    if (expanded) {
      inorder_.push_back(id);
      continue;
    }
    const Peer& p = peers_[id];
    if (p.right_child != kInvalidPeer) stack.emplace_back(p.right_child, false);
    stack.emplace_back(id, true);
    if (p.left_child != kInvalidPeer) stack.emplace_back(p.left_child, false);
  }
  RIPPLE_CHECK(inorder_.size() == peers_.size());
  // Uniform key-space slices in in-order sequence.
  const uint64_t space = zorder_.key_space_size();
  const uint64_t n = peers_.size();
  for (uint64_t r = 0; r < n; ++r) {
    Peer& p = peers_[inorder_[r]];
    p.range_lo = space / n * r + std::min(r, space % n);
    p.range_hi = space / n * (r + 1) + std::min(r + 1, space % n);
  }
  // Adjacent links: in-order neighbors.
  for (uint64_t r = 0; r < n; ++r) {
    Peer& p = peers_[inorder_[r]];
    p.adj_left = r > 0 ? inorder_[r - 1] : kInvalidPeer;
    p.adj_right = r + 1 < n ? inorder_[r + 1] : kInvalidPeer;
  }
}

void BatonOverlay::RebalanceToData(const TupleVec& tuples) {
  const uint64_t n = peers_.size();
  const uint64_t space = zorder_.key_space_size();
  // Sorted Z-keys of the data.
  std::vector<uint64_t> keys;
  keys.reserve(tuples.size());
  for (const Tuple& t : tuples) keys.push_back(zorder_.Encode(t.key));
  std::sort(keys.begin(), keys.end());
  // Range boundaries at data quantiles, forced strictly increasing so
  // every peer keeps a non-empty range.
  std::vector<uint64_t> bounds(n + 1);
  bounds[0] = 0;
  bounds[n] = space;
  for (uint64_t r = 1; r < n; ++r) {
    uint64_t b = keys.empty()
                     ? space / n * r
                     : keys[std::min<size_t>(keys.size() - 1,
                                             keys.size() * r / n)];
    b = std::max(b, bounds[r - 1] + 1);
    // Leave room for the remaining peers.
    b = std::min(b, space - (n - r));
    bounds[r] = b;
  }
  // Collect stored tuples, reassign ranges, redistribute.
  TupleVec stored;
  for (Peer& p : peers_) {
    const TupleVec mine = p.store.Snapshot();
    stored.insert(stored.end(), mine.begin(), mine.end());
    p.store.Clear();
  }
  for (uint64_t r = 0; r < n; ++r) {
    Peer& p = peers_[inorder_[r]];
    p.range_lo = bounds[r];
    p.range_hi = bounds[r + 1];
  }
  region_cache_.clear();
  region_cached_.clear();
  for (const Tuple& t : stored) InsertTuple(t);
}

const BatonOverlay::Peer& BatonOverlay::GetPeer(PeerId id) const {
  RIPPLE_DCHECK(id < peers_.size());
  return peers_[id];
}

PeerId BatonOverlay::RandomPeer(Rng* rng) const {
  return static_cast<PeerId>(rng->UniformU64(peers_.size()));
}

PeerId BatonOverlay::ResponsibleForKey(uint64_t key) const {
  // Binary search over the in-order sequence of ranges.
  size_t lo = 0, hi = inorder_.size();
  while (lo + 1 < hi) {
    const size_t mid = (lo + hi) / 2;
    if (peers_[inorder_[mid]].range_lo <= key) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return inorder_[lo];
}

PeerId BatonOverlay::ResponsiblePeer(const Point& p) const {
  return ResponsibleForKey(zorder_.Encode(p));
}

void BatonOverlay::InsertTuple(const Tuple& t) {
  peers_[ResponsiblePeer(t.key)].store.Add(t);
}

size_t BatonOverlay::TotalTuples() const {
  size_t total = 0;
  for (const Peer& p : peers_) total += p.store.size();
  return total;
}

PeerId BatonOverlay::RouteToKey(PeerId from, uint64_t key, uint64_t* hops,
                                std::vector<PeerId>* path) const {
  PeerId current = from;
  obs::RouteRecorder rec("baton", path);
  auto range_distance = [&](PeerId id) -> uint64_t {
    const Peer& p = peers_[id];
    if (key < p.range_lo) return p.range_lo - key;
    if (key >= p.range_hi) return key - p.range_hi + 1;
    return 0;
  };
  for (size_t guard = 0; guard <= 2 * peers_.size() + 64; ++guard) {
    if (range_distance(current) == 0) {
      return rec.Arrive(current, hops);
    }
    // BATON forwarding: among all linked peers, take the one whose range is
    // closest to the key (the exponential routing tables make the distance
    // shrink geometrically, giving O(log n) hops).
    const Peer& p = peers_[current];
    PeerId next = kInvalidPeer;
    uint64_t best = range_distance(current);
    auto consider = [&](PeerId cand) {
      if (cand == kInvalidPeer) return;
      const uint64_t d = range_distance(cand);
      if (next == kInvalidPeer || d < best) {
        best = d;
        next = cand;
      }
    };
    for (PeerId cand : p.left_table) consider(cand);
    for (PeerId cand : p.right_table) consider(cand);
    consider(p.left_child);
    consider(p.right_child);
    consider(p.adj_left);
    consider(p.adj_right);
    consider(p.parent);
    RIPPLE_CHECK(next != kInvalidPeer && "BATON routing stuck");
    current = rec.Step(current, next);
  }
  RIPPLE_CHECK(false && "BATON routing failed to converge");
  return kInvalidPeer;
}

const std::vector<Rect>& BatonOverlay::RegionOf(PeerId id) const {
  if (region_cache_.empty()) {
    region_cache_.resize(peers_.size());
    region_cached_.assign(peers_.size(), 0);
  }
  if (!region_cached_[id]) {
    const Peer& p = peers_[id];
    region_cache_[id] = zorder_.DecomposeInterval(p.range_lo, p.range_hi - 1);
    region_cached_[id] = 1;
  }
  return region_cache_[id];
}

Status BatonOverlay::Validate() const {
  const uint64_t n = peers_.size();
  // Ranges partition the key space in in-order sequence.
  uint64_t expected_lo = 0;
  for (uint64_t r = 0; r < n; ++r) {
    const Peer& p = peers_[inorder_[r]];
    if (p.range_lo != expected_lo || p.range_hi <= p.range_lo) {
      return Status::Internal("ranges not contiguous at rank " +
                              std::to_string(r));
    }
    expected_lo = p.range_hi;
  }
  if (expected_lo != zorder_.key_space_size()) {
    return Status::Internal("ranges do not cover the key space");
  }
  for (PeerId id = 0; id < n; ++id) {
    const Peer& p = peers_[id];
    // Parent/child symmetry.
    if (p.parent != kInvalidPeer) {
      const Peer& par = peers_[p.parent];
      if (par.left_child != id && par.right_child != id) {
        return Status::Internal("parent/child asymmetry");
      }
    }
    // In-order key ordering: left subtree < me < right subtree.
    if (p.left_child != kInvalidPeer &&
        peers_[p.left_child].range_lo >= p.range_lo) {
      return Status::Internal("left child range not below");
    }
    if (p.right_child != kInvalidPeer &&
        peers_[p.right_child].range_lo <= p.range_lo) {
      return Status::Internal("right child range not above");
    }
    // Routing tables point at the right positions.
    for (size_t j = 0; j < p.left_table.size(); ++j) {
      const Peer& q = peers_[p.left_table[j]];
      if (q.level != p.level || q.pos != p.pos - (1 << j)) {
        return Status::Internal("left routing table mismatch");
      }
    }
    for (size_t j = 0; j < p.right_table.size(); ++j) {
      const Peer& q = peers_[p.right_table[j]];
      if (q.level != p.level || q.pos != p.pos + (1 << j)) {
        return Status::Internal("right routing table mismatch");
      }
    }
    // Tuples belong to the peer's key range.
    const store::FlatStore& rows = p.store.flat();
    for (size_t r = 0; r < rows.size(); ++r) {
      const uint64_t key = zorder_.Encode(rows.PointAt(r));
      if (key < p.range_lo || key >= p.range_hi) {
        return Status::Internal("tuple key outside range");
      }
    }
  }
  return Status::OK();
}

}  // namespace ripple
