#ifndef RIPPLE_OVERLAY_CHORD_CHORD_H_
#define RIPPLE_OVERLAY_CHORD_CHORD_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "geom/zorder.h"
#include "overlay/types.h"
#include "store/local_store.h"
#include "wire/buffer.h"

namespace ripple {

/// A set of arcs on the Chord ring: disjoint, sorted, non-wrapping key
/// segments [lo, hi). This is the RIPPLE Area type for Chord — the paper's
/// Section 3.1 defines a Chord neighbor's region as the arc from the start
/// of that neighbor's zone to the start of the next neighbor's zone.
///
/// Carries the overlay's Z-order mapping so query policies can evaluate
/// multi-dimensional bounds over an arc by decomposing it into rectangles.
struct ChordArea {
  const ZOrder* zorder = nullptr;  // not owned
  std::vector<std::pair<uint64_t, uint64_t>> segments;

  bool empty() const { return segments.empty(); }
  uint64_t TotalKeys() const {
    uint64_t n = 0;
    for (const auto& [lo, hi] : segments) n += hi - lo;
    return n;
  }
  bool ContainsKey(uint64_t key) const {
    for (const auto& [lo, hi] : segments) {
      if (key >= lo && key < hi) return true;
    }
    return false;
  }
};

/// Decomposes every arc segment into maximal aligned Z-cells and invokes
/// `fn` on each resulting rectangle (query-policy bound evaluation).
template <typename F>
void ForEachRect(const ChordArea& area, F&& fn) {
  for (const auto& [lo, hi] : area.segments) {
    for (const Rect& r : area.zorder->DecomposeInterval(lo, hi - 1)) {
      fn(r);
    }
  }
}

/// Construction options for a Chord overlay.
struct ChordOptions {
  int dims = 2;
  Rect domain;  // defaults to the unit cube
  int bits_per_dim = 0;
  uint64_t seed = 1;
};

/// Chord (Stoica et al.): peers sit on a key ring at random positions; a
/// peer owns the arc from its key to its successor's key, and keeps finger
/// links to the owners of key + 2^i for every i. Multi-dimensional tuples
/// are mapped to the ring with a Z-curve.
///
/// This overlay exists to demonstrate that generic RIPPLE runs unchanged on
/// a one-dimensionalized DHT: link regions are arcs (the paper's Chord
/// region definition) and policies evaluate bounds via arc-to-rectangle
/// decomposition. Built directly at a given size (ring join/leave is
/// orthogonal to query processing and omitted).
class ChordOverlay {
 public:
  using Area = ChordArea;

  struct Link {
    PeerId target = kInvalidPeer;
    ChordArea region;
  };

  struct Peer {
    uint64_t key = 0;       // ring position; owns [key, successor.key)
    uint64_t zone_end = 0;  // successor's key (wraps past the ring end)
    std::vector<Link> links;
    LocalStore store;
  };

  ChordOverlay(size_t num_peers, const ChordOptions& options);

  ChordOverlay(const ChordOverlay&) = delete;
  ChordOverlay& operator=(const ChordOverlay&) = delete;
  ChordOverlay(ChordOverlay&&) = default;
  ChordOverlay& operator=(ChordOverlay&&) = default;

  int dims() const { return zorder_.dims(); }
  const ZOrder& zorder() const { return zorder_; }
  size_t NumPeers() const { return peers_.size(); }

  const Peer& GetPeer(PeerId id) const;
  PeerId RandomPeer(Rng* rng) const;

  void InsertTuple(const Tuple& t);
  size_t TotalTuples() const;
  PeerId ResponsibleForKey(uint64_t key) const;
  PeerId ResponsiblePeer(const Point& p) const;

  /// Greedy clockwise finger routing; `hops` receives the hop count.
  /// `path` (optional) receives the forwarding peers in order (destination
  /// excluded); completed routes are recorded under "chord.route.*" in
  /// obs::Registry::Global() when globally enabled.
  PeerId RouteToKey(PeerId from, uint64_t key, uint64_t* hops,
                    std::vector<PeerId>* path) const;
  PeerId RouteToKey(PeerId from, uint64_t key, uint64_t* hops) const {
    return RouteToKey(from, key, hops, nullptr);
  }

  /// The whole ring (every peer's own zone is excluded from its link
  /// regions, so the engine's initial restriction is simply everything).
  Area FullArea() const;

  /// Arc-set intersection; false when empty.
  static bool IntersectArea(const Area& a, const Area& b, Area* out);

  /// Area wire codec (docs/WIRE.md): [varint count] then per segment
  /// [varint lo][varint (hi - lo)]. The zorder pointer never travels;
  /// DecodeArea re-binds the decoded area to this overlay's mapping and
  /// rejects segments that leave the ring or are empty.
  void EncodeArea(const Area& area, wire::Buffer* buf) const;
  bool DecodeArea(wire::Reader* r, Area* out) const;

  /// Structural self-check: zones partition the ring; per peer, link
  /// regions partition the ring minus the peer's own zone.
  Status Validate() const;

 private:
  uint64_t RingSize() const { return zorder_.key_space_size(); }
  /// Splits a possibly wrapping arc [lo, hi) into non-wrapping segments.
  std::vector<std::pair<uint64_t, uint64_t>> SplitArc(uint64_t lo,
                                                      uint64_t hi) const;

  ZOrder zorder_;
  std::vector<Peer> peers_;     // sorted by key
};

}  // namespace ripple

#endif  // RIPPLE_OVERLAY_CHORD_CHORD_H_
