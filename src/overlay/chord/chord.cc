#include "overlay/chord/chord.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/profile.h"

namespace ripple {

ChordOverlay::ChordOverlay(size_t num_peers, const ChordOptions& options)
    : zorder_(options.dims,
              options.domain.dims() == 0 ? Rect::Unit(options.dims)
                                         : options.domain,
              options.bits_per_dim) {
  RIPPLE_CHECK(num_peers >= 1);
  RIPPLE_CHECK(num_peers <= RingSize());
  // Distinct random ring positions, sorted.
  Rng rng(options.seed);
  std::set<uint64_t> keys;
  while (keys.size() < num_peers) keys.insert(rng.UniformU64(RingSize()));
  peers_.resize(num_peers);
  size_t i = 0;
  for (uint64_t k : keys) peers_[i++].key = k;
  for (size_t p = 0; p < num_peers; ++p) {
    peers_[p].zone_end = peers_[(p + 1) % num_peers].key;
  }

  // Finger links: for every i, the owner of key + 2^i; deduplicated, self
  // excluded, ordered clockwise. The region of each link is the arc from
  // its target's zone start to the next link target's zone start; the last
  // region ends at the peer's own key (paper, Section 3.1).
  const uint64_t ring = RingSize();
  for (PeerId id = 0; id < num_peers; ++id) {
    Peer& w = peers_[id];
    std::set<PeerId> targets;
    if (num_peers > 1) {
      // The successor pointer every Chord node maintains; without it the
      // finger regions could skip the successor's zone and leave a gap.
      targets.insert(static_cast<PeerId>((id + 1) % num_peers));
    }
    for (int b = 0; (uint64_t{1} << b) < ring; ++b) {
      const uint64_t probe = (w.key + (uint64_t{1} << b)) % ring;
      const PeerId t = ResponsibleForKey(probe);
      if (t != id) targets.insert(t);
    }
    // Clockwise order of targets by zone start relative to w.
    std::vector<PeerId> ordered(targets.begin(), targets.end());
    auto clockwise = [&](PeerId a, PeerId b2) {
      const uint64_t da = (peers_[a].key + ring - w.key) % ring;
      const uint64_t db = (peers_[b2].key + ring - w.key) % ring;
      return da < db;
    };
    std::sort(ordered.begin(), ordered.end(), clockwise);
    for (size_t j = 0; j < ordered.size(); ++j) {
      const uint64_t start = peers_[ordered[j]].key;
      const uint64_t end =
          j + 1 < ordered.size() ? peers_[ordered[j + 1]].key : w.key;
      Link link;
      link.target = ordered[j];
      link.region.zorder = &zorder_;
      link.region.segments = SplitArc(start, end);
      w.links.push_back(std::move(link));
    }
  }
}

std::vector<std::pair<uint64_t, uint64_t>> ChordOverlay::SplitArc(
    uint64_t lo, uint64_t hi) const {
  std::vector<std::pair<uint64_t, uint64_t>> segs;
  if (lo == hi) return segs;  // empty arc (full-ring arcs never occur here)
  if (lo < hi) {
    segs.emplace_back(lo, hi);
  } else {
    segs.emplace_back(lo, RingSize());
    if (hi > 0) segs.emplace_back(0, hi);
    std::sort(segs.begin(), segs.end());
  }
  return segs;
}

const ChordOverlay::Peer& ChordOverlay::GetPeer(PeerId id) const {
  RIPPLE_DCHECK(id < peers_.size());
  return peers_[id];
}

PeerId ChordOverlay::RandomPeer(Rng* rng) const {
  return static_cast<PeerId>(rng->UniformU64(peers_.size()));
}

PeerId ChordOverlay::ResponsibleForKey(uint64_t key) const {
  // Owner = last peer with key <= target, wrapping to the highest peer.
  auto it = std::upper_bound(peers_.begin(), peers_.end(), key,
                             [](uint64_t k, const Peer& p) {
                               return k < p.key;
                             });
  if (it == peers_.begin()) return static_cast<PeerId>(peers_.size() - 1);
  return static_cast<PeerId>(it - peers_.begin() - 1);
}

PeerId ChordOverlay::ResponsiblePeer(const Point& p) const {
  return ResponsibleForKey(zorder_.Encode(p));
}

void ChordOverlay::InsertTuple(const Tuple& t) {
  peers_[ResponsiblePeer(t.key)].store.Add(t);
}

size_t ChordOverlay::TotalTuples() const {
  size_t total = 0;
  for (const Peer& p : peers_) total += p.store.size();
  return total;
}

PeerId ChordOverlay::RouteToKey(PeerId from, uint64_t key, uint64_t* hops,
                                std::vector<PeerId>* path) const {
  const uint64_t ring = RingSize();
  PeerId current = from;
  obs::RouteRecorder rec("chord", path);
  auto owns = [&](PeerId id) {
    const Peer& p = peers_[id];
    const uint64_t span = (p.zone_end + ring - p.key) % ring;
    const uint64_t off = (key + ring - p.key) % ring;
    return peers_.size() == 1 || off < span;
  };
  for (size_t guard = 0; guard <= peers_.size(); ++guard) {
    if (owns(current)) {
      return rec.Arrive(current, hops);
    }
    // Classic Chord: the farthest link that does not overshoot the key.
    const Peer& p = peers_[current];
    PeerId next = kInvalidPeer;
    uint64_t best = 0;
    for (const Link& link : p.links) {
      const uint64_t d = (peers_[link.target].key + ring - p.key) % ring;
      const uint64_t target_d = (key + ring - p.key) % ring;
      if (d <= target_d && d >= best) {
        best = d;
        next = link.target;
      }
    }
    RIPPLE_CHECK(next != kInvalidPeer);
    current = rec.Step(current, next);
  }
  RIPPLE_CHECK(false && "Chord routing failed to converge");
  return kInvalidPeer;
}

ChordOverlay::Area ChordOverlay::FullArea() const {
  Area a;
  a.zorder = &zorder_;
  a.segments.emplace_back(0, RingSize());
  return a;
}

bool ChordOverlay::IntersectArea(const Area& a, const Area& b, Area* out) {
  out->zorder = a.zorder != nullptr ? a.zorder : b.zorder;
  out->segments.clear();
  for (const auto& [alo, ahi] : a.segments) {
    for (const auto& [blo, bhi] : b.segments) {
      const uint64_t lo = std::max(alo, blo);
      const uint64_t hi = std::min(ahi, bhi);
      if (lo < hi) out->segments.emplace_back(lo, hi);
    }
  }
  std::sort(out->segments.begin(), out->segments.end());
  return !out->segments.empty();
}

void ChordOverlay::EncodeArea(const Area& area, wire::Buffer* buf) const {
  buf->PutVarint(area.segments.size());
  for (const auto& [lo, hi] : area.segments) {
    buf->PutVarint(lo);
    buf->PutVarint(hi - lo);
  }
}

bool ChordOverlay::DecodeArea(wire::Reader* r, Area* out) const {
  out->zorder = &zorder_;
  out->segments.clear();
  const uint64_t count = r->Varint();
  // Each segment needs at least two varint bytes.
  if (!r->ok() || count > r->remaining() / 2) {
    r->Fail();
    return false;
  }
  out->segments.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t lo = r->Varint();
    const uint64_t span = r->Varint();
    if (!r->ok()) return false;
    if (span == 0 || lo >= RingSize() || span > RingSize() - lo) {
      r->Fail();
      return false;
    }
    out->segments.emplace_back(lo, lo + span);
  }
  return true;
}

Status ChordOverlay::Validate() const {
  const uint64_t ring = RingSize();
  // Keys strictly increasing; zones chain around the ring.
  for (size_t i = 0; i + 1 < peers_.size(); ++i) {
    if (peers_[i].key >= peers_[i + 1].key) {
      return Status::Internal("ring keys not sorted");
    }
    if (peers_[i].zone_end != peers_[i + 1].key) {
      return Status::Internal("zone chain broken");
    }
  }
  for (PeerId id = 0; id < peers_.size(); ++id) {
    const Peer& w = peers_[id];
    // Link regions must partition the ring minus w's own zone.
    uint64_t covered = 0;
    for (const Link& link : w.links) {
      if (link.target >= peers_.size() || link.target == id) {
        return Status::Internal("bad link target");
      }
      covered += link.region.TotalKeys();
      // The target's zone start must begin its region.
      if (!link.region.ContainsKey(peers_[link.target].key) &&
          link.region.TotalKeys() > 0) {
        return Status::Internal("link target outside its region");
      }
    }
    const uint64_t own = (w.zone_end + ring - w.key) % ring;
    const uint64_t own_span = peers_.size() == 1 ? ring : own;
    if (peers_.size() > 1 && covered != ring - own_span) {
      return Status::Internal("link regions do not cover ring minus zone");
    }
    const store::FlatStore& rows = w.store.flat();
    for (size_t r = 0; r < rows.size(); ++r) {
      const uint64_t key = zorder_.Encode(rows.PointAt(r));
      const uint64_t off = (key + ring - w.key) % ring;
      if (peers_.size() > 1 && off >= own_span) {
        return Status::Internal("tuple outside zone");
      }
    }
  }
  return Status::OK();
}

}  // namespace ripple
