#ifndef RIPPLE_OVERLAY_TYPES_H_
#define RIPPLE_OVERLAY_TYPES_H_

#include <cstdint>
#include <limits>

#include "geom/rect.h"

namespace ripple {

/// Stable identifier of a peer within one overlay instance. Ids are array
/// indices; departed peers leave holes that later joins may reuse.
using PeerId = uint32_t;

inline constexpr PeerId kInvalidPeer = std::numeric_limits<PeerId>::max();

/// A link of a peer whose RIPPLE region is a single rectangle (MIDAS and
/// CAN; Chord uses arc-shaped areas instead). `region` is the link's RIPPLE
/// region from the owning peer's viewpoint — a partition cell of the domain
/// that contains the target's zone (paper, Section 3.1).
struct RectLink {
  PeerId target = kInvalidPeer;
  Rect region;
  /// For MIDAS: the depth of the sibling subtree this link points into
  /// (link index + 1). For other overlays: an overlay-specific tag.
  int depth = 0;
};

}  // namespace ripple

#endif  // RIPPLE_OVERLAY_TYPES_H_
