#include "cache/query_cache.h"

#include <cstdio>

#include "obs/metrics.h"

namespace ripple::cache {

std::string CacheStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "hits=%llu misses=%llu insertions=%llu evictions=%llu "
                "expirations=%llu invalidations=%llu bytes_saved=%llu",
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(misses),
                static_cast<unsigned long long>(insertions),
                static_cast<unsigned long long>(evictions),
                static_cast<unsigned long long>(expirations),
                static_cast<unsigned long long>(invalidations),
                static_cast<unsigned long long>(bytes_saved));
  return buf;
}

const QueryCache::Entry* QueryCache::Lookup(const std::string& key) {
  if (key.empty()) return nullptr;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    stats_.misses += 1;
    return nullptr;
  }
  if (Expired(it->second->second.stamp)) {
    lru_.erase(it->second);
    entries_.erase(it);
    stats_.expirations += 1;
    stats_.misses += 1;
    return nullptr;
  }
  // Bump to most-recently-used.
  lru_.splice(lru_.begin(), lru_, it->second);
  stats_.hits += 1;
  stats_.bytes_saved += it->second->second.cold_stats.bytes_on_wire;
  return &it->second->second;
}

void QueryCache::Insert(const std::string& key, TupleVec answer,
                        const QueryStats& cold_stats) {
  if (key.empty() || opts_.capacity == 0) return;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    lru_.erase(it->second);
    entries_.erase(it);
  }
  while (entries_.size() >= opts_.capacity) {
    entries_.erase(lru_.back().first);
    lru_.pop_back();
    stats_.evictions += 1;
  }
  Entry e;
  e.answer = std::move(answer);
  e.cold_stats = cold_stats;
  e.stamp = tick_;
  lru_.emplace_front(key, std::move(e));
  entries_.emplace(key, lru_.begin());
  stats_.insertions += 1;
}

const QueryCache::Bound* QueryCache::LookupBound(
    const std::string& key) const {
  if (key.empty()) return nullptr;
  auto it = bounds_.find(key);
  if (it == bounds_.end()) return nullptr;
  if (Expired(it->second.stamp)) return nullptr;
  return &it->second;
}

void QueryCache::InsertBound(const std::string& key, size_t m,
                             double tau_norm) {
  if (key.empty() || opts_.capacity == 0) return;
  // Bounded like the answer side; the index carries one small struct per
  // scorer, so a full wipe on overflow is deterministic and cheap.
  if (bounds_.size() >= opts_.capacity && bounds_.count(key) == 0) {
    bounds_.clear();
  }
  Bound& b = bounds_[key];
  if (m > b.m || (m == b.m && tau_norm > b.tau_norm)) {
    b.m = m;
    b.tau_norm = tau_norm;
  }
  b.stamp = tick_;
}

void QueryCache::InvalidateAll() {
  stats_.invalidations += entries_.size() + bounds_.size();
  entries_.clear();
  lru_.clear();
  bounds_.clear();
}

void RecordCacheMetrics(const CacheStats& s) {
  if (!obs::Registry::GlobalEnabled()) return;
  obs::Registry& reg = obs::Registry::Global();
  reg.GetCounter("cache.hit").Inc(s.hits);
  reg.GetCounter("cache.miss").Inc(s.misses);
  reg.GetCounter("cache.insert").Inc(s.insertions);
  reg.GetCounter("cache.evict").Inc(s.evictions);
  reg.GetCounter("cache.expire").Inc(s.expirations);
  reg.GetCounter("cache.invalidate").Inc(s.invalidations);
  reg.GetCounter("cache.bytes_saved").Inc(s.bytes_saved);
}

}  // namespace ripple::cache
