#include "cache/adaptive.h"

#include <algorithm>
#include <cstdio>

namespace ripple::cache {

int DepthHint(size_t num_peers) {
  int depth = 0;
  while ((size_t{1} << depth) < num_peers && depth < 62) ++depth;
  return depth;
}

AdaptiveController::AdaptiveController(int depth_hint, AdaptiveOptions opts)
    : depth_hint_(depth_hint < 0 ? 0 : depth_hint), opts_(opts) {
  if (opts_.max_hops < 0) opts_.max_hops = 0;
  if (opts_.decay <= 0.0 || opts_.decay >= 1.0) opts_.decay = 0.5;
}

RippleParam AdaptiveController::Choose() const {
  int r = std::clamp(depth_hint_ / 3, 1, std::max(opts_.max_hops, 1));
  if (observations_ > 0) {
    const double per_hop = ewma_messages_ / std::max(1.0, ewma_hops_);
    if (per_hop > opts_.flood_threshold) {
      r = std::min(r + 1, opts_.max_hops);
    } else if (per_hop < opts_.calm_threshold) {
      r = std::max(r - 1, 0);
    }
  }
  return r == 0 ? RippleParam::Fast() : RippleParam::Hops(r);
}

void AdaptiveController::Observe(const QueryStats& stats) {
  const double a = opts_.decay;
  if (observations_ == 0) {
    ewma_hops_ = static_cast<double>(stats.latency_hops);
    ewma_messages_ = static_cast<double>(stats.messages);
    ewma_bytes_ = static_cast<double>(stats.bytes_on_wire);
  } else {
    ewma_hops_ = a * ewma_hops_ + (1 - a) * stats.latency_hops;
    ewma_messages_ = a * ewma_messages_ + (1 - a) * stats.messages;
    ewma_bytes_ = a * ewma_bytes_ + (1 - a) * stats.bytes_on_wire;
  }
  observations_ += 1;
}

void AdaptiveController::ObservePeerLoad(
    const std::vector<uint64_t>& visits) {
  if (heat_.size() < visits.size()) heat_.resize(visits.size(), 0.0);
  for (size_t p = 0; p < heat_.size(); ++p) {
    const double v = p < visits.size() ? static_cast<double>(visits[p]) : 0.0;
    heat_[p] = opts_.decay * heat_[p] + v;
  }
}

double AdaptiveController::LinkBias(PeerId p) const {
  if (p >= heat_.size()) return 0.0;
  return -heat_[p];
}

std::string AdaptiveController::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "choose=%s n=%llu ewma_hops=%.2f ewma_messages=%.2f "
                "ewma_bytes=%.0f",
                Choose().ToString().c_str(),
                static_cast<unsigned long long>(observations_), ewma_hops_,
                ewma_messages_, ewma_bytes_);
  return buf;
}

}  // namespace ripple::cache
