#include "cache/normalize.h"

#include <cmath>
#include <cstdio>

namespace ripple::cache {
namespace {

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendPoint(std::string* out, const Point& p) {
  for (int d = 0; d < p.dims(); ++d) {
    if (d > 0) *out += ',';
    AppendDouble(out, p[d]);
  }
}

const char* NormName(Norm n) {
  switch (n) {
    case Norm::kL1:
      return "l1";
    case Norm::kL2:
      return "l2";
    case Norm::kLInf:
      return "linf";
  }
  return "?";
}

}  // namespace

std::string NormalizeScorer(const Scorer& scorer, double* scale) {
  *scale = 1.0;
  if (const auto* lin = dynamic_cast<const LinearScorer*>(&scorer)) {
    double mass = 0.0;
    for (double w : lin->weights()) mass += std::fabs(w);
    if (mass > 0.0 && std::isfinite(mass)) *scale = mass;
    std::string key = "lin:";
    bool first = true;
    for (double w : lin->weights()) {
      if (!first) key += ',';
      first = false;
      AppendDouble(&key, w / *scale);
    }
    return key;
  }
  if (const auto* near = dynamic_cast<const NearestScorer*>(&scorer)) {
    std::string key = "near:";
    AppendPoint(&key, near->anchor());
    key += ':';
    key += NormName(near->norm());
    return key;
  }
  // Unknown scorer families fall back to their printed form: no scale
  // freedom is assumed, identical text means identical function.
  return "scorer:" + scorer.ToString();
}

std::string TopKAnswerKey(const TopKQuery& q) {
  if (q.scorer == nullptr || q.epsilon != 0.0) return "";
  double scale = 1.0;
  std::string key = "topk|";
  key += NormalizeScorer(*q.scorer, &scale);
  key += "|k=" + std::to_string(q.k);
  return key;
}

std::string SkylineAnswerKey(const SkylineQuery& q) {
  std::string key = "skyline|";
  key += NormName(q.norm);
  if (q.constraint.has_value()) {
    key += "|box=";
    AppendPoint(&key, q.constraint->lo());
    key += ';';
    AppendPoint(&key, q.constraint->hi());
  }
  return key;
}

std::string SkybandAnswerKey(const SkybandQuery& q) {
  std::string key = "skyband|band=" + std::to_string(q.band) + "|";
  key += NormName(q.norm);
  return key;
}

std::string RangeAnswerKey(const RangeQuery& q) {
  std::string key = "range|c=";
  AppendPoint(&key, q.center);
  key += "|r=";
  AppendDouble(&key, q.radius);
  key += "|";
  key += NormName(q.norm);
  return key;
}

std::string TopKBoundKey(const TopKQuery& q, double* scale) {
  *scale = 1.0;
  if (q.scorer == nullptr) return "";
  return "bound|" + NormalizeScorer(*q.scorer, scale);
}

double LoosenBound(double tau) {
  if (!std::isfinite(tau)) return tau;
  return tau - std::fabs(tau) * 1e-12 - 1e-300;
}

}  // namespace ripple::cache
