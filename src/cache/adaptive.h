#ifndef RIPPLE_CACHE_ADAPTIVE_H_
#define RIPPLE_CACHE_ADAPTIVE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/metrics.h"
#include "overlay/types.h"
#include "ripple/api.h"

namespace ripple::cache {

/// Tuning knobs of the adaptive ripple controller. Defaults follow the
/// paper's ablation sweep: small r captures most of the message savings
/// while the latency stays near the fast extreme, so the controller works
/// a narrow band around depth/3 instead of sweeping the whole range.
struct AdaptiveOptions {
  /// The controller never chooses r above this.
  int max_hops = 8;
  /// EWMA weight of history per observation, in (0, 1): the window
  /// "decays" — an observation's influence halves roughly every
  /// 1/(1-decay) queries at the default.
  double decay = 0.5;
  /// Messages-per-latency-hop above which the run looks broadcast-heavy
  /// and the controller raises r (more slow discipline, more pruning).
  double flood_threshold = 4.0;
  /// Messages-per-latency-hop below which pruning already works and the
  /// controller lowers r to cut sequential latency.
  double calm_threshold = 1.5;
  /// Deterministic seed, reserved for stochastic exploration policies.
  /// The shipped controller is a pure function of its observations, so
  /// repeated runs are byte-identical by construction; the seed is part
  /// of the contract so future policies stay that way.
  uint64_t seed = 1;
};

/// log2-ish overlay depth estimate from the peer count — the hint the
/// controller anchors its no-history default to.
int DepthHint(size_t num_peers);

/// Chooses the ripple parameter `r` (and per-link contact priorities) per
/// query from a decaying window of observed QueryStats. Deterministic:
/// Choose() is a pure function of (options, depth hint, observation
/// sequence), and every driver feeds observations sequentially in item
/// order — never from worker threads — so "--ripple=auto" answers and
/// stats are byte-identical across runs and executor thread counts.
///
/// Control model (docs/CACHING.md): start from r0 = clamp(depth/3, 1,
/// max_hops); once observations exist, compare the window's messages per
/// latency hop against the flood/calm thresholds and nudge r by one in
/// the direction that trades the cheaper resource — messages look like a
/// broadcast, raise r; pruning is already effective, lower r toward the
/// latency-optimal fast extreme.
class AdaptiveController {
 public:
  explicit AdaptiveController(int depth_hint, AdaptiveOptions opts = {});

  /// The controller's current choice of a concrete ripple parameter.
  RippleParam Choose() const;

  /// `requested` unless it is Auto(), which resolves through Choose().
  RippleParam Resolve(RippleParam requested) const {
    return requested.is_auto() ? Choose() : requested;
  }

  /// Folds one executed query's cost into the decaying window.
  void Observe(const QueryStats& stats);

  /// Folds a per-peer visit census (WorkloadResult::peer_visits or a
  /// profiler export) into the decayed per-peer heat that drives
  /// LinkBias.
  void ObservePeerLoad(const std::vector<uint64_t>& visits);

  /// Secondary contact-order key for Engine/AsyncEngine::SetLinkBias:
  /// colder peers (less decayed heat) sort first among priority ties, so
  /// repeated workloads spread tie-broken load instead of re-hammering
  /// the same peer. Higher = contact earlier.
  double LinkBias(PeerId p) const;

  uint64_t observations() const { return observations_; }
  std::string Summary() const;

 private:
  int depth_hint_;
  AdaptiveOptions opts_;
  uint64_t observations_ = 0;
  double ewma_hops_ = 0.0;
  double ewma_messages_ = 0.0;
  double ewma_bytes_ = 0.0;
  std::vector<double> heat_;
};

}  // namespace ripple::cache

#endif  // RIPPLE_CACHE_ADAPTIVE_H_
