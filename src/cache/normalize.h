#ifndef RIPPLE_CACHE_NORMALIZE_H_
#define RIPPLE_CACHE_NORMALIZE_H_

#include <string>

#include "geom/scoring.h"
#include "queries/range.h"
#include "queries/skyband.h"
#include "queries/skyline.h"
#include "queries/topk.h"

namespace ripple::cache {

/// Canonical, byte-stable text identities for query instances, the keys of
/// the initiator-side QueryCache (cache/query_cache.h). Two queries map to
/// the same key only when they are guaranteed byte-identical answers on
/// the same deployment: answers of every cacheable query kind are unique
/// sets with deterministic ordering (store/local_algos.h tie-breaks by
/// tuple id), independent of the initiator, of the ripple parameter and of
/// visit order — so neither appears in the key. Doubles are printed with
/// %.17g, the shortest round-trip-exact form.

/// Scale-invariant canonical form of a scorer, with the positive scale
/// factor divided out returned through `*scale` (1.0 when the scorer has
/// no scale freedom). Top-k answers are invariant under positive scaling
/// of a linear scorer's weights — Score_w(p) = scale * Score_{w/scale}(p)
/// preserves every comparison — so linear scorers are normalized by their
/// L1 weight mass and queries differing only by scale share cache lines.
/// Thresholds stored against this key must be normalized by the same
/// scale (tau_norm = tau / scale) and rescaled on reuse.
std::string NormalizeScorer(const Scorer& scorer, double* scale);

/// Answer-cache keys. A top-k key is only issued for exact queries
/// (epsilon == 0): with approximation slack the returned set may depend on
/// traversal details the key deliberately omits. Returns "" = do not
/// cache.
std::string TopKAnswerKey(const TopKQuery& q);
std::string SkylineAnswerKey(const SkylineQuery& q);
std::string SkybandAnswerKey(const SkybandQuery& q);
std::string RangeAnswerKey(const RangeQuery& q);

/// Bound-index key: the scorer identity alone (no k, no epsilon). A
/// (m, tau_norm) claim stored under it — "m tuples scoring at least
/// tau_norm * scale exist" — is a true statement about the data for ANY
/// query over that scorer, which is what lets overlapping top-k queries
/// prune links before their first hop.
std::string TopKBoundKey(const TopKQuery& q, double* scale);

/// Rounds a reconstructed threshold DOWN by a relative 1e-12 so the
/// float rounding of normalize-then-rescale can never push it above the
/// exact value it stands for. Loosening a sound bound keeps it sound
/// (a hair less pruning, never a wrong answer).
double LoosenBound(double tau);

}  // namespace ripple::cache

#endif  // RIPPLE_CACHE_NORMALIZE_H_
