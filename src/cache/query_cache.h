#ifndef RIPPLE_CACHE_QUERY_CACHE_H_
#define RIPPLE_CACHE_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "net/metrics.h"
#include "store/tuple.h"

namespace ripple::cache {

/// Tuning knobs of the initiator-side answer/bound cache.
struct CacheOptions {
  /// Maximum resident answer entries; the least-recently-used entry is
  /// evicted on overflow. The bound index shares the same capacity.
  size_t capacity = 256;
  /// Entries older than this many logical ticks are expired on lookup.
  /// The clock is Tick() — advanced once per executed query by the
  /// owning driver — NOT wall time, so expiry is deterministic and
  /// byte-identical across runs and thread counts. 0 disables TTL.
  uint64_t ttl_ticks = 0;
};

/// Hit/miss accounting, exported into the obs registry as `cache.*`
/// counters by RecordCacheMetrics.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t expirations = 0;
  uint64_t invalidations = 0;
  /// Wire bytes the hits avoided: the cold run's bytes_on_wire, credited
  /// once per hit.
  uint64_t bytes_saved = 0;

  std::string ToString() const;
};

/// The initiator-side cache of recent query answers plus a bound index of
/// top-k threshold claims (see cache/normalize.h for the keying rules).
///
/// Single-threaded by contract, like obs::Tracer: every driver consults
/// it sequentially at plan time (before jobs fan out to workers) and
/// absorbs results sequentially in item order afterwards, which is what
/// keeps hit patterns — and therefore answers and bench counters —
/// byte-identical across runs AND across executor thread counts.
///
/// Only complete, fault-free answers may be inserted; on any churn or
/// crash signal the owner calls InvalidateAll() — a peer leaving can
/// strand cached tuples, so the cache never second-guesses, it drops
/// everything.
class QueryCache {
 public:
  struct Entry {
    TupleVec answer;
    /// Cost of the run that produced the answer — what a hit saves.
    QueryStats cold_stats;
    uint64_t stamp = 0;  // insertion tick
  };

  /// A normalized top-k threshold claim: "m tuples scoring at least
  /// tau_norm * scale exist" for the scorer the key names.
  struct Bound {
    size_t m = 0;
    double tau_norm = 0.0;
    uint64_t stamp = 0;
  };

  explicit QueryCache(CacheOptions opts = {}) : opts_(opts) {}

  /// LRU-bumping lookup; counts a hit or a miss, expires by TTL. The
  /// returned pointer is valid until the next non-const call. Empty keys
  /// always miss (and are not counted — they mark uncacheable queries).
  const Entry* Lookup(const std::string& key);

  /// Inserts (or replaces) the answer for `key`, evicting the LRU entry
  /// when at capacity. Callers must only insert complete answers.
  void Insert(const std::string& key, TupleVec answer,
              const QueryStats& cold_stats);

  /// Bound index: keeps the strongest claim per key (larger m wins, then
  /// larger tau_norm). Lookup does not count hits/misses — bounds refine
  /// misses, they do not replace runs.
  const Bound* LookupBound(const std::string& key) const;
  void InsertBound(const std::string& key, size_t m, double tau_norm);

  /// Drops every answer and every bound (churn/crash invalidation).
  void InvalidateAll();

  /// Advances the logical TTL clock (once per executed query).
  void Tick() { ++tick_; }
  uint64_t tick() const { return tick_; }

  size_t size() const { return entries_.size(); }
  size_t bound_size() const { return bounds_.size(); }
  const CacheStats& stats() const { return stats_; }
  const CacheOptions& options() const { return opts_; }

 private:
  using LruList = std::list<std::pair<std::string, Entry>>;

  bool Expired(uint64_t stamp) const {
    return opts_.ttl_ticks > 0 && tick_ > stamp + opts_.ttl_ticks;
  }

  CacheOptions opts_;
  CacheStats stats_;
  uint64_t tick_ = 0;
  /// Front = most recently used.
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> entries_;
  std::unordered_map<std::string, Bound> bounds_;
};

/// Flushes cache accounting into the global obs registry (`cache.hit`,
/// `cache.miss`, `cache.bytes_saved`, ...). Pass a delta — typically one
/// cache's lifetime stats, once, after the workload drains — the counters
/// accumulate. No-op unless obs::Registry::EnableGlobal(true).
void RecordCacheMetrics(const CacheStats& s);

}  // namespace ripple::cache

#endif  // RIPPLE_CACHE_QUERY_CACHE_H_
