#include "exec/workload.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ripple::exec {
namespace {

bool ParseSize(const std::string& v, size_t* out) {
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v.c_str(), &end, 10);
  if (end == v.c_str() || *end != '\0') return false;
  *out = static_cast<size_t>(parsed);
  return true;
}

bool ParseDouble(const std::string& v, double* out) {
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  if (end == v.c_str() || *end != '\0') return false;
  *out = parsed;
  return true;
}

Status LineError(size_t line_no, const std::string& what) {
  return Status::InvalidArgument("workload line " + std::to_string(line_no) +
                                 ": " + what);
}

}  // namespace

const char* WorkloadKindName(WorkloadItem::Kind kind) {
  switch (kind) {
    case WorkloadItem::Kind::kTopK: return "topk";
    case WorkloadItem::Kind::kSkyline: return "skyline";
    case WorkloadItem::Kind::kSkyband: return "skyband";
    case WorkloadItem::Kind::kRange: return "range";
  }
  return "?";
}

Result<std::vector<WorkloadItem>> ParseWorkload(const std::string& text) {
  std::vector<WorkloadItem> items;
  std::istringstream lines(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    std::istringstream words(line);
    std::string word;
    if (!(words >> word) || word[0] == '#') continue;

    WorkloadItem item;
    if (word == "topk") {
      item.kind = WorkloadItem::Kind::kTopK;
    } else if (word == "skyline") {
      item.kind = WorkloadItem::Kind::kSkyline;
    } else if (word == "skyband") {
      item.kind = WorkloadItem::Kind::kSkyband;
    } else if (word == "range") {
      item.kind = WorkloadItem::Kind::kRange;
    } else {
      return LineError(line_no, "unknown query kind '" + word +
                                    "' (topk | skyline | skyband | range)");
    }

    size_t count = 1;
    while (words >> word) {
      const size_t eq = word.find('=');
      if (eq == std::string::npos || eq == 0) {
        return LineError(line_no, "expected key=value, got '" + word + "'");
      }
      const std::string key = word.substr(0, eq);
      const std::string value = word.substr(eq + 1);
      bool ok = true;
      if (key == "k") {
        ok = ParseSize(value, &item.k) && item.k > 0;
      } else if (key == "band") {
        ok = ParseSize(value, &item.band) && item.band > 0;
      } else if (key == "radius") {
        ok = ParseDouble(value, &item.radius) && item.radius > 0;
      } else if (key == "epsilon") {
        ok = ParseDouble(value, &item.epsilon) && item.epsilon >= 0;
      } else if (key == "deadline") {
        ok = ParseDouble(value, &item.deadline) && item.deadline > 0;
      } else if (key == "count") {
        ok = ParseSize(value, &count) && count > 0;
      } else if (key == "group") {
        size_t g = 0;
        ok = ParseSize(value, &g) && g <= size_t{1} << 30;
        if (ok) item.group = static_cast<int>(g);
      } else if (key == "r") {
        const Result<RippleParam> r = RippleParam::Parse(value);
        if (!r.ok()) return LineError(line_no, r.status().message());
        item.ripple = *r;
      } else {
        return LineError(line_no, "unknown key '" + key + "'");
      }
      if (!ok) {
        return LineError(line_no,
                         "bad value for " + key + ": '" + value + "'");
      }
    }

    // Trimmed spec line as the label; repeats share it (their distinct
    // identity is the item index, which also drives seed derivation).
    std::istringstream relabel(line);
    std::string token, label;
    while (relabel >> token) {
      if (!label.empty()) label += ' ';
      label += token;
    }
    item.label = label;
    for (size_t i = 0; i < count; ++i) items.push_back(item);
  }
  if (items.empty()) {
    return Status::InvalidArgument("workload is empty (no query lines)");
  }
  return items;
}

Result<std::vector<WorkloadItem>> LoadWorkloadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot open workload file: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseWorkload(text.str());
}

std::vector<WorkloadItem> DefaultWorkloadMix(size_t queries) {
  // 4:2:1:1 topk : skyline : skyband : range, round-robin so any prefix of
  // the workload keeps the mix. Matches docs/EXECUTOR.md's tuning section.
  static constexpr const char* kMix[8] = {
      "topk k=10", "skyline", "topk k=10", "skyband band=2",
      "topk k=5",  "skyline", "topk k=20", "range radius=0.1",
  };
  std::string text;
  for (size_t i = 0; i < queries; ++i) {
    text += kMix[i % 8];
    text += '\n';
  }
  Result<std::vector<WorkloadItem>> parsed = ParseWorkload(text);
  return std::move(parsed).value();
}

}  // namespace ripple::exec
