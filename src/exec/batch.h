#ifndef RIPPLE_EXEC_BATCH_H_
#define RIPPLE_EXEC_BATCH_H_

#include <algorithm>
#include <limits>
#include <memory>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/adaptive.h"
#include "cache/normalize.h"
#include "cache/query_cache.h"
#include "exec/compile.h"
#include "exec/executor.h"
#include "exec/workload.h"

namespace ripple::exec {

/// Batched execution over the initiator-side cache (docs/CACHING.md).
///
/// All cache consultation happens at PLAN time — sequentially, in item
/// order, before any job reaches a worker — and all cache absorption
/// happens POST-run, again in item order. Workers never touch the cache
/// or the controller, which is what keeps hit patterns, resolved `auto`
/// ripple parameters and therefore every deterministic field of the
/// result byte-identical across executor thread counts.
///
/// Soundness: answers are only reused for EXACT key matches (normalized
/// query identity, cache/normalize.h), only complete fault-free answers
/// are inserted, and the whole layer must be kept off under fault
/// injection — a cached answer would mask the degradation the faults are
/// there to produce.
struct BatchOptions {
  /// Answer/bound reuse; nullptr = no cache (batching may still merge).
  cache::QueryCache* cache = nullptr;
  /// Resolves WorkloadItem r=auto and biases slow-phase tie order;
  /// nullptr = auto degrades to the controller-less default (fast).
  cache::AdaptiveController* controller = nullptr;
  /// Merge duplicate in-flight items (same normalized key) into one
  /// leader job whose answer the followers copy.
  bool merge_duplicates = true;
};

/// One workload item's disposition.
struct BatchSlot {
  enum class Role {
    kLead,    // runs as an executor job
    kFollow,  // copies the leader's answer; never runs
    kHit,     // answered straight from the cache; never runs
  };
  Role role = Role::kLead;
  /// Item index of the leader this slot follows (kFollow only).
  size_t leader = 0;
  /// Follower count (kLead only) — annotated onto the job label/span.
  size_t followers_of = 0;
  /// Normalized answer key; empty = uncacheable, always leads alone.
  std::string key;
  /// kHit: the cached answer and the cold cost it avoided.
  TupleVec cached_answer;
  QueryStats saved_stats;
  /// Pre-hop pruning seed from the bound index (top-k leads only).
  bool has_seed = false;
  TopKState seed;
};

struct BatchPlan {
  /// One slot per workload item, in item order.
  std::vector<BatchSlot> slots;
  /// The items with every r=auto resolved to a concrete parameter.
  std::vector<WorkloadItem> items;
  size_t leads = 0;
  size_t follows = 0;
  size_t hits = 0;
};

/// A compiled plan: only leader jobs, plus the map back to item indices.
struct BatchedWorkload {
  CompiledWorkload compiled;
  /// compiled.jobs[j] executes item job_items[j].
  std::vector<size_t> job_items;
};

/// Rebuilds the full per-item WorkloadResult from the leader-only run:
/// leads keep their outcomes (re-indexed), follows copy their leader's
/// answer with zero network cost, hits carry the cached answer with zero
/// cost. total_stats / completed / shed / partial are re-aggregated over
/// all items; wall-clock histograms, profile and peer_visits keep
/// describing the jobs that actually ran.
WorkloadResult ExpandBatchedResult(const BatchPlan& plan,
                                   const std::vector<size_t>& job_items,
                                   WorkloadResult lead);

namespace internal {

template <typename Q>
std::string AnswerKeyFor(const Q& query) {
  if constexpr (std::is_same_v<Q, TopKQuery>) {
    return cache::TopKAnswerKey(query);
  } else if constexpr (std::is_same_v<Q, SkylineQuery>) {
    return cache::SkylineAnswerKey(query);
  } else if constexpr (std::is_same_v<Q, SkybandQuery>) {
    return cache::SkybandAnswerKey(query);
  } else {
    static_assert(std::is_same_v<Q, RangeQuery>);
    return cache::RangeAnswerKey(query);
  }
}

}  // namespace internal

/// Plans the workload: resolves every r=auto through the controller (in
/// item order, before anything runs), keys every instance, consults the
/// cache for exact hits and top-k bound seeds, and groups duplicate
/// in-flight keys behind one leader.
template <typename Overlay>
BatchPlan PlanWorkload(const Overlay& overlay,
                       std::vector<WorkloadItem> items,
                       const CompileOptions& opts, const BatchOptions& b) {
  BatchPlan plan;
  for (WorkloadItem& item : items) {
    if (item.ripple.is_auto()) {
      item.ripple = b.controller != nullptr ? b.controller->Choose()
                                            : RippleParam::Fast();
    }
  }
  plan.slots.resize(items.size());
  std::unordered_map<std::string, size_t> first_of;  // key -> leader item
  std::vector<std::unique_ptr<Scorer>> scorers;
  ForEachWorkloadInstance(
      overlay, items, opts.seed, &scorers,
      [&](size_t i, const WorkloadItem&, PeerId, auto query) {
        using Q = std::decay_t<decltype(query)>;
        BatchSlot& slot = plan.slots[i];
        slot.key = internal::AnswerKeyFor<Q>(query);
        if (slot.key.empty()) return;  // uncacheable: leads alone
        if (b.cache != nullptr) {
          if (const cache::QueryCache::Entry* e = b.cache->Lookup(slot.key);
              e != nullptr) {
            slot.role = BatchSlot::Role::kHit;
            slot.cached_answer = e->answer;
            slot.saved_stats = e->cold_stats;
            return;
          }
        }
        if (b.merge_duplicates) {
          auto [it, inserted] = first_of.emplace(slot.key, i);
          if (!inserted) {
            slot.role = BatchSlot::Role::kFollow;
            slot.leader = it->second;
            plan.slots[it->second].followers_of += 1;
            return;
          }
        }
        if constexpr (std::is_same_v<Q, TopKQuery>) {
          // A miss may still prune from hop zero: reuse the strongest
          // threshold claim known for this scorer. Only seeds witnessing
          // >= k tuples apply — SeededTopK cannot soundly fold a partial
          // cached seed into its walk (overlapping sets double-count).
          if (b.cache != nullptr && query.k > 0) {
            double scale = 1.0;
            const std::string bkey = cache::TopKBoundKey(query, &scale);
            if (const cache::QueryCache::Bound* bound =
                    b.cache->LookupBound(bkey);
                bound != nullptr && bound->m >= query.k) {
              slot.has_seed = true;
              slot.seed.m = bound->m;
              slot.seed.tau = cache::LoosenBound(bound->tau_norm * scale);
            }
          }
        }
      });
  for (const BatchSlot& slot : plan.slots) {
    switch (slot.role) {
      case BatchSlot::Role::kLead:
        plan.leads += 1;
        break;
      case BatchSlot::Role::kFollow:
        plan.follows += 1;
        break;
      case BatchSlot::Role::kHit:
        plan.hits += 1;
        break;
    }
  }
  plan.items = std::move(items);
  return plan;
}

/// Compiles ONLY the plan's leader items into executor jobs, preserving
/// each item's original index (so per-item seeds, fault schedules and
/// trace ids match an unbatched compile of the same workload exactly).
/// Leader labels gain a "[batch+N]"/"[seeded]" suffix, which is what the
/// executor's admission spans record — the span annotation for batching.
template <typename Overlay>
BatchedWorkload CompileBatchedWorkload(const Overlay& overlay,
                                       const BatchPlan& plan,
                                       const CompileOptions& opts) {
  BatchedWorkload out;
  out.compiled.jobs.reserve(plan.leads);
  ForEachWorkloadInstance(
      overlay, plan.items, opts.seed, &out.compiled.scorers,
      [&](size_t i, const WorkloadItem& item, PeerId initiator, auto query) {
        using Q = std::decay_t<decltype(query)>;
        const BatchSlot& slot = plan.slots[i];
        if (slot.role != BatchSlot::Role::kLead) return;
        WorkloadItem labeled = item;
        if (slot.followers_of > 0) {
          labeled.label +=
              " [batch+" + std::to_string(slot.followers_of) + "]";
        }
        if (slot.has_seed) labeled.label += " [seeded]";
        if constexpr (std::is_same_v<Q, TopKQuery>) {
          const bool seeded = slot.has_seed;
          const TopKState seed = slot.seed;
          out.compiled.jobs.push_back(internal::MakeJob<Overlay, TopKPolicy>(
              overlay, std::move(query), labeled, opts, i, initiator,
              [seeded, seed](const Overlay& o, const auto& engine,
                             const auto& req) {
                if (seeded) {
                  auto seeded_req = req;
                  seeded_req.initial_state = seed;
                  return SeededTopK(o, engine, seeded_req);
                }
                return SeededTopK(o, engine, req);
              }));
        } else if constexpr (std::is_same_v<Q, SkylineQuery>) {
          out.compiled.jobs.push_back(
              internal::MakeJob<Overlay, SkylinePolicy>(
                  overlay, std::move(query), labeled, opts, i, initiator,
                  [](const Overlay& o, const auto& engine, const auto& req) {
                    return SeededSkyline(o, engine, req);
                  }));
        } else if constexpr (std::is_same_v<Q, SkybandQuery>) {
          out.compiled.jobs.push_back(
              internal::MakeJob<Overlay, SkybandPolicy>(
                  overlay, std::move(query), labeled, opts, i, initiator,
                  [](const Overlay&, const auto& engine, const auto& req) {
                    return engine.Run(req);
                  }));
        } else {
          static_assert(std::is_same_v<Q, RangeQuery>);
          out.compiled.jobs.push_back(internal::MakeJob<Overlay, RangePolicy>(
              overlay, std::move(query), labeled, opts, i, initiator,
              [](const Overlay&, const auto& engine, const auto& req) {
                return engine.Run(req);
              }));
        }
        out.job_items.push_back(i);
      });
  return out;
}

/// Post-run absorption, in item order: ticks the cache's logical clock,
/// inserts every complete leader answer (plus the top-k bound it
/// witnesses), and feeds the controller's decaying window. Must run on
/// the admission thread after the executor joins.
template <typename Overlay>
void AbsorbBatchedResults(const Overlay& overlay, const BatchPlan& plan,
                          const CompileOptions& opts,
                          const WorkloadResult& result,
                          const BatchOptions& b) {
  std::vector<std::unique_ptr<Scorer>> scorers;
  ForEachWorkloadInstance(
      overlay, plan.items, opts.seed, &scorers,
      [&](size_t i, const WorkloadItem&, PeerId, auto query) {
        using Q = std::decay_t<decltype(query)>;
        const BatchSlot& slot = plan.slots[i];
        const QueryOutcome& q = result.queries[i];
        if (b.cache != nullptr) b.cache->Tick();
        if (slot.role != BatchSlot::Role::kLead) return;
        if (b.controller != nullptr && !q.shed) {
          b.controller->Observe(q.stats);
        }
        if (b.cache == nullptr || slot.key.empty() || q.shed || !q.complete) {
          return;
        }
        b.cache->Insert(slot.key, q.answer, q.stats);
        if constexpr (std::is_same_v<Q, TopKQuery>) {
          if (query.k > 0 && q.answer.size() >= query.k) {
            double scale = 1.0;
            const std::string bkey = cache::TopKBoundKey(query, &scale);
            double tau = std::numeric_limits<double>::infinity();
            for (const Tuple& t : q.answer) {
              tau = std::min(tau, query.scorer->Score(t.key));
            }
            if (std::isfinite(tau)) {
              b.cache->InsertBound(bkey, q.answer.size(), tau / scale);
            }
          }
        }
      });
  if (b.controller != nullptr) {
    b.controller->ObservePeerLoad(result.peer_visits);
  }
}

/// The whole batched pipeline: plan -> compile leaders -> run -> expand
/// -> absorb. Drop-in replacement for CompileWorkload + Executor::Run
/// when a cache/controller is in play.
template <typename Overlay>
WorkloadResult RunBatchedWorkload(Executor& executor, const Overlay& overlay,
                                  std::vector<WorkloadItem> items,
                                  const CompileOptions& copts,
                                  const BatchOptions& bopts,
                                  BatchPlan* plan_out = nullptr) {
  BatchPlan plan = PlanWorkload(overlay, std::move(items), copts, bopts);
  BatchedWorkload bw = CompileBatchedWorkload(overlay, plan, copts);
  WorkloadResult lead = executor.Run(bw.compiled.jobs, overlay.NumPeers());
  WorkloadResult full =
      ExpandBatchedResult(plan, bw.job_items, std::move(lead));
  AbsorbBatchedResults(overlay, plan, copts, full, bopts);
  if (plan_out != nullptr) *plan_out = std::move(plan);
  return full;
}

}  // namespace ripple::exec

#endif  // RIPPLE_EXEC_BATCH_H_
