#include "exec/batch.h"

namespace ripple::exec {

WorkloadResult ExpandBatchedResult(const BatchPlan& plan,
                                   const std::vector<size_t>& job_items,
                                   WorkloadResult lead) {
  // Map each leader item index to its outcome in the leader-only run.
  std::unordered_map<size_t, const QueryOutcome*> by_item;
  by_item.reserve(job_items.size());
  for (size_t j = 0; j < job_items.size() && j < lead.queries.size(); ++j) {
    by_item.emplace(job_items[j], &lead.queries[j]);
  }

  WorkloadResult full = std::move(lead);
  std::vector<QueryOutcome> expanded(plan.slots.size());
  full.total_stats = QueryStats{};
  full.completed = 0;
  full.shed = 0;
  full.partial = 0;
  for (size_t i = 0; i < plan.slots.size(); ++i) {
    const BatchSlot& slot = plan.slots[i];
    QueryOutcome& out = expanded[i];
    switch (slot.role) {
      case BatchSlot::Role::kLead: {
        auto it = by_item.find(i);
        if (it != by_item.end()) out = *it->second;
        out.index = i;
        break;
      }
      case BatchSlot::Role::kFollow: {
        // The follower is the same query instance as its leader: same
        // answer, byte for byte — but it never touched the network, so
        // it carries zero cost and no trace of its own.
        auto it = by_item.find(slot.leader);
        if (it != by_item.end()) {
          const QueryOutcome& led = *it->second;
          out.answer = led.answer;
          out.complete = led.complete;
          out.shed = led.shed;
          out.initiator = led.initiator;
        }
        out.index = i;
        out.worker = -1;
        break;
      }
      case BatchSlot::Role::kHit: {
        out.index = i;
        out.worker = -1;
        out.answer = slot.cached_answer;
        out.complete = true;
        break;
      }
    }
    if (out.shed) {
      full.shed += 1;
    } else {
      full.completed += 1;
      if (!out.complete) full.partial += 1;
    }
    full.total_stats += out.stats;
  }
  full.queries = std::move(expanded);
  // Throughput counts every answered query — followers and hits complete
  // without running, which is the point of the layer. Wall-clock
  // histograms, profile, peer_visits and coverage keep describing the
  // leader jobs that actually executed.
  if (full.wall_s > 0.0) {
    full.qps = static_cast<double>(full.completed) / full.wall_s;
  }
  return full;
}

}  // namespace ripple::exec
