#ifndef RIPPLE_EXEC_EXECUTOR_H_
#define RIPPLE_EXEC_EXECUTOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/rng.h"
#include "net/coverage.h"
#include "net/metrics.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/snapshot.h"
#include "obs/trace.h"
#include "overlay/types.h"
#include "store/tuple.h"

namespace ripple::exec {

class SharedLoadTable;

/// Tuning knobs of the concurrent workload executor. The determinism
/// contract (docs/EXECUTOR.md) is parameterized by (seed, threads): with
/// both fixed, job-to-worker assignment, every per-worker RNG stream and
/// therefore every deterministic field of the WorkloadResult are
/// byte-identical across runs.
struct ExecutorOptions {
  /// Pool size. Values < 1 are treated as 1.
  int threads = 1;
  /// Bounded admission-queue capacity PER WORKER. When a worker's queue is
  /// full, Run()'s admission loop blocks — backpressure, not buffering.
  size_t queue_capacity = 64;
  /// Master seed: derives each worker's private RNG stream.
  uint64_t seed = 1;
  /// Target admission rate in queries/second; 0 = admit as fast as
  /// backpressure allows. Pacing bounds offered load, backpressure bounds
  /// accepted load; with both, the executor degrades by queueing first and
  /// shedding expired-deadline queries second.
  double qps_target = 0.0;
  /// Shard count of the per-peer mutexes guarding the live load table.
  size_t lock_shards = 64;
  /// Record one admission-to-completion span per query into the owning
  /// worker's tracer (see Executor::worker_tracers). Off by default: spans
  /// cost memory per query and the histograms carry the same latencies.
  bool collect_spans = false;
  /// Windowed metrics: when `snapshots` is set and `snapshot_every_ms`
  /// > 0, the admission thread captures the series at that wall-clock
  /// period (plus one initial and one final capture). Caller owns the
  /// series.
  obs::SnapshotSeries* snapshots = nullptr;
  double snapshot_every_ms = 0.0;
  /// Slow-query log: executed queries whose admission-to-completion
  /// latency crosses the log's threshold are recorded (force-sampled
  /// even when head sampling skipped them). Caller owns the log.
  obs::SlowQueryLog* slow_log = nullptr;
  /// Per-peer event journal shared by every worker (obs::JournalSet is
  /// thread-safe). Jobs wire it into their engines via
  /// JobContext::journal; worker tracers mirror admission spans into it
  /// for head-sampled queries. Caller owns the set.
  obs::JournalSet* journal = nullptr;
};

/// Everything a job may touch that belongs to the worker running it. All
/// pointers are worker-private (no synchronization needed) except `load`,
/// which is the shared per-peer table guarding itself with sharded locks.
struct JobContext {
  int worker = 0;
  /// The worker's seeded RNG stream: deterministic given (seed, threads),
  /// because job-to-worker assignment is static round-robin.
  Rng* rng = nullptr;
  /// The worker's private profiler; merged into WorkloadResult::profile
  /// after the pool joins.
  obs::Profiler* profiler = nullptr;
  /// The worker's tracer, or null unless ExecutorOptions::collect_spans.
  obs::Tracer* tracer = nullptr;
  /// Live per-peer visit counts shared across workers (sharded mutexes).
  SharedLoadTable* load = nullptr;
  /// The shared per-peer event journal from ExecutorOptions::journal, or
  /// null. Jobs attach it to the engines they build.
  obs::JournalSet* journal = nullptr;
};

/// What one executed query reports back to the executor.
struct JobResult {
  TupleVec answer;
  QueryStats stats;
  net::Coverage coverage;
  bool complete = true;
  /// Simulated completion time (async-engine jobs; 0 for recursive runs).
  double completion_time = 0.0;
  /// The peer the query entered the network at (span/debug labeling).
  PeerId initiator = kInvalidPeer;
  /// The query's trace id (0 = not head-sampled); feeds the slow-query
  /// log so slow entries can link to their distributed trace.
  uint64_t trace_id = 0;
};

/// One unit of admitted work: a closure over a compiled QueryRequest (see
/// exec/compile.h) plus executor-level metadata.
struct Job {
  std::function<JobResult(JobContext&)> run;
  /// Wall-clock milliseconds from admission after which a still-queued
  /// query is shed instead of run (QueryRequest::deadline's executor-side
  /// interpretation; see docs/EXECUTOR.md). Infinity = never shed.
  double deadline_ms = std::numeric_limits<double>::infinity();
  /// Human-readable label ("topk k=10 r=fast"), for summaries and spans.
  std::string label;
};

/// Per-query outcome, indexed by submission order.
///
/// Deterministic fields (byte-identical for fixed seed + threads, and —
/// for jobs compiled by exec/compile.h, which derive everything from the
/// per-item seed — for ANY thread count): `answer`, `stats`, `coverage`,
/// `complete`, `completion_time`, `initiator`, `worker`, `shed` when no
/// deadline is set. Wall-clock fields (`*_ms`) are measurements, never
/// deterministic; deadlines make `shed` timing-dependent too.
struct QueryOutcome {
  size_t index = 0;
  int worker = -1;
  /// True iff the deadline expired while the query was still queued; the
  /// query never ran, `answer` is empty and `complete` is false.
  bool shed = false;
  PeerId initiator = kInvalidPeer;
  uint64_t trace_id = 0;
  TupleVec answer;
  QueryStats stats;
  net::Coverage coverage;
  bool complete = true;
  double completion_time = 0.0;
  double wait_ms = 0.0;   // admission -> worker pop
  double run_ms = 0.0;    // worker pop -> job return
  double total_ms = 0.0;  // admission -> completion (the latency histogram)
};

/// Aggregate result of one Executor::Run. The deterministic/wall split of
/// QueryOutcome carries over: `queries`, `total_stats`, `coverage`,
/// `completed`/`partial` counts, `profile` and `peer_visits` are
/// deterministic (fixed seed + threads, no deadlines); `wall_s`, `qps` and
/// the latency histograms are measurements.
struct WorkloadResult {
  std::vector<QueryOutcome> queries;
  /// Sum of every executed query's QueryStats.
  QueryStats total_stats;
  /// Sum of every executed query's fault-layer coverage report.
  net::Coverage coverage;
  size_t completed = 0;  // queries that ran (== queries.size() - shed)
  size_t shed = 0;       // queries dropped by their queue deadline
  size_t partial = 0;    // ran but complete == false (fault degradation)
  double wall_s = 0.0;
  /// Executed queries per wall-clock second.
  double qps = 0.0;
  obs::Histogram latency_ms;  // admission -> completion, executed queries
  obs::Histogram wait_ms;     // time spent queued
  obs::Histogram run_ms;      // time spent executing
  /// Per-worker profilers merged in worker order: per-peer spans,
  /// messages, tuples and CPU across the whole workload.
  obs::Profiler profile;
  /// Final per-peer visit counts from the live sharded-lock table. Equals
  /// the profiler's span counts for recursive-engine jobs (asserted by
  /// ExecTest); async jobs feed only the profiler.
  std::vector<uint64_t> peer_visits;

  /// One-paragraph human summary (counts, qps, latency percentiles, peak
  /// peer load).
  std::string Summary() const;
};

/// The concurrent workload executor: a fixed pool of worker threads, one
/// bounded admission queue per worker, static round-robin job assignment
/// (job i -> worker i mod threads, the cornerstone of the determinism
/// contract), per-worker seeded RNGs/profilers/tracers, deadline shedding,
/// and obs wiring (exec.* counters + queue-depth gauge when the global
/// registry is enabled).
///
/// Threading model and tuning guide: docs/EXECUTOR.md. The overlay being
/// queried is shared read-only across workers — engines never mutate it —
/// while all per-query mutable state lives in the job or its worker. The
/// process-global obs hooks stay live through the parallel section:
/// Counter/Gauge/Histogram mutation is atomic or internally locked, the
/// registry's create-on-first-use map and the global profiler feed are
/// mutex-guarded, so worker-side engine runs (coverage/traffic metrics,
/// bootstrap routing) land in the global registry instead of being
/// silently dropped.
class Executor {
 public:
  explicit Executor(ExecutorOptions options) : options_(options) {
    if (options_.threads < 1) options_.threads = 1;
  }

  const ExecutorOptions& options() const { return options_; }

  /// Runs every job to completion (or its deadline) and aggregates.
  /// `peer_universe` sizes the shared load table and the merged profiler —
  /// pass overlay.NumPeers(). Blocks until the workload drains; the
  /// calling thread is the admission thread.
  WorkloadResult Run(const std::vector<Job>& jobs, size_t peer_universe);

  /// Per-worker tracers of the last Run (admission spans when
  /// collect_spans, plus any engine spans jobs recorded through
  /// JobContext::tracer). Valid until the next Run.
  const std::vector<obs::Tracer>& worker_tracers() const { return tracers_; }

 private:
  ExecutorOptions options_;
  std::vector<obs::Tracer> tracers_;
};

}  // namespace ripple::exec

#endif  // RIPPLE_EXEC_EXECUTOR_H_
