#ifndef RIPPLE_EXEC_COMPILE_H_
#define RIPPLE_EXEC_COMPILE_H_

#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "exec/executor.h"
#include "exec/sharded_lock.h"
#include "exec/workload.h"
#include "geom/scoring.h"
#include "net/fault.h"
#include "queries/range.h"
#include "queries/skyband.h"
#include "queries/skyline.h"
#include "queries/skyline_driver.h"
#include "queries/topk.h"
#include "queries/topk_driver.h"
#include "ripple/api.h"
#include "ripple/engine.h"
#include "sim/async_engine.h"

namespace ripple::exec {

/// How CompileWorkload turns WorkloadItems into executable Jobs.
struct CompileOptions {
  /// Master seed. Each item's instance randomness (initiator, scorer
  /// weights, range center) flows from a per-item stream derived from
  /// (seed, item index) — NOT from the worker RNG — so compiled answers
  /// are identical for every thread count, not just every run.
  uint64_t seed = 1;
  /// Run through the discrete-event AsyncEngine instead of the recursive
  /// Engine. Required for fault injection and in-engine deadlines.
  bool async = false;
  /// Fault model for async jobs; FaultOptions::seed is overridden per item
  /// (derived from `seed` and the index) so fault schedules are
  /// reproducible yet independent across queries.
  net::FaultOptions fault;
  /// Retry discipline for async jobs under faults.
  net::RetryOptions retry;
  /// Head-based trace sampling probability in [0, 1]. The decision is
  /// drawn per item from the item's own stream (thread-count invariant)
  /// and stamped into QueryRequest::trace_id — 0 keeps every query
  /// unsampled.
  double trace_sample = 0.0;
};

/// A compiled workload: the jobs plus the scorer storage they borrow from.
/// Movable; must outlive the Executor::Run call consuming `jobs`.
struct CompiledWorkload {
  std::vector<Job> jobs;
  /// Owns the Scorer objects top-k jobs reference (TopKQuery holds a raw
  /// pointer by design — scorers must outlive the query).
  std::vector<std::unique_ptr<Scorer>> scorers;
};

namespace internal {

/// Independent per-item stream: splitmix-style spread of (seed, index) so
/// neighboring items and neighboring seeds do not correlate.
inline uint64_t ItemSeed(uint64_t seed, size_t index) {
  return seed * 0x9e3779b97f4a7c15ULL +
         (static_cast<uint64_t>(index) + 1) * 0x517cc1b727220a95ULL;
}

/// Locality groups (WorkloadItem::group >= 0) replace the per-item stream
/// with a per-GROUP stream so every member draws the identical instance.
/// XOR'd into a distinct constant so group g never collides with item g.
inline uint64_t GroupSeed(uint64_t seed, int group) {
  return ItemSeed(seed, static_cast<size_t>(group)) ^ 0x6a09e667f3bcc909ULL;
}

inline uint64_t InstanceSeed(uint64_t seed, const WorkloadItem& item,
                             size_t index) {
  return item.group >= 0 ? GroupSeed(seed, item.group) : ItemSeed(seed, index);
}

inline JobResult ToJobResult(QueryResult<TupleVec> result, PeerId initiator,
                             uint64_t trace_id) {
  JobResult jr;
  jr.answer = std::move(result.answer);
  jr.stats = result.stats;
  jr.coverage = std::move(result.coverage);
  jr.complete = result.complete;
  jr.completion_time = result.completion_time;
  jr.initiator = initiator;
  jr.trace_id = trace_id;
  return jr;
}

/// Builds the engine for one job invocation and wires the worker-private
/// observability from the JobContext. Engines are cheap (two pointers and
/// a stateless policy), so constructing one per run beats sharing mutable
/// engine state across workers. The worker tracer intentionally only
/// receives the executor's admission envelopes, not per-visit engine
/// spans: a workload of thousands of queries would otherwise record
/// millions of spans.
template <typename EngineT>
void WireEngine(EngineT* engine, JobContext& ctx) {
  engine->SetProfiler(ctx.profiler);
  engine->SetJournal(ctx.journal);
  if (ctx.load != nullptr) {
    SharedLoadTable* load = ctx.load;
    engine->SetVisitObserver([load](PeerId p) { load->Charge(p); });
  }
}

template <typename Overlay, typename Policy>
QueryRequest<Policy> MakeRequest(PeerId initiator,
                                 typename Policy::Query query,
                                 const WorkloadItem& item,
                                 const CompileOptions& opts, size_t index) {
  QueryRequest<Policy> req;
  req.initiator = initiator;
  req.query = std::move(query);
  req.ripple = item.ripple;
  if (opts.async) {
    req.deadline = item.deadline;  // sim units once the engine owns it
    req.retry = opts.retry;
    req.fault = opts.fault;
    req.fault.seed = ItemSeed(opts.seed, index) ^ 0x5bf03635ULL;
  }
  if (opts.trace_sample > 0.0) {
    // Head sampling: one decision per query, taken here (the initiator),
    // honored by every peer because the id rides the v2 frame header.
    Rng trng(ItemSeed(opts.seed, index) ^ 0x7ace1dULL);
    if (trng.UniformDouble() < opts.trace_sample) {
      req.trace_id = ItemSeed(opts.seed, index) | 1ULL;  // nonzero
    }
  }
  return req;
}

/// One Job body: sync/async dispatch happens per call so the same
/// compiled workload structure serves both engines.
template <typename Overlay, typename Policy, typename Driver>
Job MakeJob(const Overlay& overlay, typename Policy::Query query,
            const WorkloadItem& item, const CompileOptions& opts,
            size_t index, PeerId initiator, Driver driver) {
  Job job;
  job.label = item.label.empty() ? WorkloadKindName(item.kind) : item.label;
  job.deadline_ms = item.deadline;  // wall-ms while queued (executor side)
  job.run = [&overlay, query = std::move(query), item, opts, index, initiator,
             driver](JobContext& ctx) -> JobResult {
    const QueryRequest<Policy> req =
        MakeRequest<Overlay, Policy>(initiator, query, item, opts, index);
    if (opts.async) {
      AsyncEngine<Overlay, Policy> engine(&overlay, Policy{});
      WireEngine(&engine, ctx);
      return ToJobResult(driver(overlay, engine, req), initiator,
                         req.trace_id);
    }
    Engine<Overlay, Policy> engine(&overlay, Policy{});
    WireEngine(&engine, ctx);
    return ToJobResult(driver(overlay, engine, req), initiator, req.trace_id);
  };
  return job;
}

}  // namespace internal

/// The per-item instance generation underneath CompileWorkload, exposed
/// so other drivers of the workload-file format (net-bench's live client)
/// draw byte-identical query instances. For each item, the per-item RNG
/// stream (InstanceSeed: ItemSeed(seed, index), or the group's shared
/// stream for locality-grouped items) draws — in this exact, frozen order —
/// the initiator, then the kind-specific parameters (top-k scorer
/// weights; range center), and `visit(index, item, initiator, query)` is
/// invoked with the typed query (TopKQuery / SkylineQuery / SkybandQuery
/// / RangeQuery — visitors dispatch with `if constexpr`). Top-k scorers
/// are appended to `*scorers`, which must outlive every use of the
/// visited queries.
template <typename Overlay, typename Visitor>
void ForEachWorkloadInstance(const Overlay& overlay,
                             const std::vector<WorkloadItem>& items,
                             uint64_t seed,
                             std::vector<std::unique_ptr<Scorer>>* scorers,
                             Visitor&& visit) {
  const int dims = overlay.domain().dims();
  for (size_t i = 0; i < items.size(); ++i) {
    const WorkloadItem& item = items[i];
    Rng rng(internal::InstanceSeed(seed, item, i));
    const PeerId initiator = overlay.RandomPeer(&rng);
    switch (item.kind) {
      case WorkloadItem::Kind::kTopK: {
        std::vector<double> weights(dims);
        for (double& w : weights) w = 0.1 + rng.UniformDouble();
        scorers->push_back(std::make_unique<LinearScorer>(weights));
        TopKQuery query;
        query.scorer = scorers->back().get();
        query.k = item.k;
        query.epsilon = item.epsilon;
        visit(i, item, initiator, std::move(query));
        break;
      }
      case WorkloadItem::Kind::kSkyline: {
        visit(i, item, initiator, SkylineQuery{});
        break;
      }
      case WorkloadItem::Kind::kSkyband: {
        SkybandQuery query;
        query.band = item.band;
        visit(i, item, initiator, std::move(query));
        break;
      }
      case WorkloadItem::Kind::kRange: {
        RangeQuery query;
        query.center = Point(dims);
        const Rect domain = overlay.domain();
        for (int d = 0; d < dims; ++d) {
          query.center[d] = rng.UniformDouble(domain.lo()[d], domain.hi()[d]);
        }
        query.radius = item.radius;
        visit(i, item, initiator, std::move(query));
        break;
      }
    }
  }
}

/// Compiles a parsed workload against an overlay into executor Jobs.
///
/// Determinism: every instance decision is drawn from a fresh per-item
/// RNG stream seeded by (opts.seed, item index). Two runs — on any thread
/// count — therefore execute byte-identical QueryRequests, and since the
/// engines are deterministic, produce byte-identical answers/stats
/// (ExecTest.AnswersInvariantAcrossThreadCounts). The overlay must
/// outlive the returned jobs; it is shared read-only across workers.
template <typename Overlay>
CompiledWorkload CompileWorkload(const Overlay& overlay,
                                 const std::vector<WorkloadItem>& items,
                                 const CompileOptions& opts = {}) {
  CompiledWorkload out;
  out.jobs.reserve(items.size());
  ForEachWorkloadInstance(
      overlay, items, opts.seed, &out.scorers,
      [&](size_t i, const WorkloadItem& item, PeerId initiator, auto query) {
        using Q = std::decay_t<decltype(query)>;
        if constexpr (std::is_same_v<Q, TopKQuery>) {
          out.jobs.push_back(internal::MakeJob<Overlay, TopKPolicy>(
              overlay, std::move(query), item, opts, i, initiator,
              [](const Overlay& o, const auto& engine, const auto& req) {
                return SeededTopK(o, engine, req);
              }));
        } else if constexpr (std::is_same_v<Q, SkylineQuery>) {
          out.jobs.push_back(internal::MakeJob<Overlay, SkylinePolicy>(
              overlay, std::move(query), item, opts, i, initiator,
              [](const Overlay& o, const auto& engine, const auto& req) {
                return SeededSkyline(o, engine, req);
              }));
        } else if constexpr (std::is_same_v<Q, SkybandQuery>) {
          out.jobs.push_back(internal::MakeJob<Overlay, SkybandPolicy>(
              overlay, std::move(query), item, opts, i, initiator,
              [](const Overlay&, const auto& engine, const auto& req) {
                return engine.Run(req);
              }));
        } else {
          static_assert(std::is_same_v<Q, RangeQuery>);
          out.jobs.push_back(internal::MakeJob<Overlay, RangePolicy>(
              overlay, std::move(query), item, opts, i, initiator,
              [](const Overlay&, const auto& engine, const auto& req) {
                return engine.Run(req);
              }));
        }
      });
  return out;
}

}  // namespace ripple::exec

#endif  // RIPPLE_EXEC_COMPILE_H_
