#ifndef RIPPLE_EXEC_WORKLOAD_H_
#define RIPPLE_EXEC_WORKLOAD_H_

#include <limits>
#include <string>
#include <vector>

#include "common/result.h"
#include "ripple/api.h"

namespace ripple::exec {

/// One query of a multi-query workload, as parsed from a workload file.
/// The item describes the query *shape*; everything instance-specific
/// (initiator, scorer weights, range center) is derived deterministically
/// from the master seed and the item's position when the workload is
/// compiled against an overlay (exec/compile.h), so a workload file plus
/// a seed pins the exact queries byte for byte.
struct WorkloadItem {
  enum class Kind { kTopK, kSkyline, kSkyband, kRange };

  Kind kind = Kind::kTopK;
  /// Result size (topk).
  size_t k = 10;
  /// Skyband depth.
  size_t band = 2;
  /// Range query radius (L2 ball).
  double radius = 0.1;
  /// Top-k approximation slack (0 = exact).
  double epsilon = 0.0;
  /// The fast/slow/ripple knob for this query.
  RippleParam ripple = RippleParam::Fast();
  /// Per-query deadline, reusing the QueryRequest::deadline field. The
  /// clock interpreting it is whichever layer owns the query at the time:
  /// wall-clock MILLISECONDS since admission while the query waits in the
  /// executor queue (expiry there sheds the query un-run), and simulated
  /// time units once the async engine executes it (expiry there returns a
  /// flagged partial answer). Infinity = no deadline.
  double deadline = std::numeric_limits<double>::infinity();
  /// Locality group: items sharing a non-negative group draw their
  /// instance randomness (initiator, scorer weights, range center) from
  /// the GROUP's stream instead of the item's own, making them exact
  /// repeats of the same query — the workload-file model of million-user
  /// streams re-asking popular queries. What the batching layer
  /// (exec/batch.h) merges and the answer cache hits on. -1 = no group:
  /// every item is its own instance (the historical behavior).
  int group = -1;
  /// The spec line this item came from, for labels and error messages.
  std::string label;
};

const char* WorkloadKindName(WorkloadItem::Kind kind);

/// Parses a workload description, one query per line:
///
///   # comments and blank lines are skipped
///   topk k=10 r=fast
///   topk k=5 r=2 epsilon=0.05 count=8
///   skyline r=slow
///   skyband band=3
///   range radius=0.15 deadline=500
///
/// Keys: `k`, `band`, `radius`, `epsilon`, `r` (fast | slow | hop count |
/// auto), `deadline` (see WorkloadItem::deadline), `count` (repeat the
/// line N times; each repeat is a distinct item with its own derived
/// seed), `group` (locality group — see WorkloadItem::group; `count`
/// repeats of a grouped line are exact repeats of one query instance).
/// Unknown keys or malformed values fail with a line-numbered error.
Result<std::vector<WorkloadItem>> ParseWorkload(const std::string& text);

/// ParseWorkload over the contents of `path`.
Result<std::vector<WorkloadItem>> LoadWorkloadFile(const std::string& path);

/// The default mixed workload the CLI and the throughput bench use when no
/// file is given: a top-k–heavy mix with skyline, skyband and range
/// queries riding along, `queries` items total.
std::vector<WorkloadItem> DefaultWorkloadMix(size_t queries);

}  // namespace ripple::exec

#endif  // RIPPLE_EXEC_WORKLOAD_H_
