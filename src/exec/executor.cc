#include "exec/executor.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <thread>
#include <utility>

#include "exec/queue.h"
#include "exec/sharded_lock.h"

namespace ripple::exec {
namespace {

using Clock = std::chrono::steady_clock;

double MsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

/// One admitted query in flight between the admission loop and a worker.
struct Task {
  size_t index = 0;
  Clock::time_point admitted{};
};

/// The exec.* instruments, resolved once (single-threaded, before the pool
/// starts) so workers only touch atomic Counter/Gauge methods and never
/// the registry's map. Null pointers when the global registry is off.
struct ExecInstruments {
  obs::Counter* submitted = nullptr;
  obs::Counter* completed = nullptr;
  obs::Counter* shed = nullptr;
  obs::Counter* partial = nullptr;
  obs::Gauge* queue_depth = nullptr;
  std::vector<obs::Counter*> worker_completed;

  static ExecInstruments Resolve(int threads) {
    ExecInstruments ins;
    if (!obs::Registry::GlobalEnabled()) return ins;
    obs::Registry& reg = obs::Registry::Global();
    ins.submitted = &reg.GetCounter("exec.submitted");
    ins.completed = &reg.GetCounter("exec.completed");
    ins.shed = &reg.GetCounter("exec.shed");
    ins.partial = &reg.GetCounter("exec.partial");
    ins.queue_depth = &reg.GetGauge("exec.queue_depth");
    ins.worker_completed.reserve(threads);
    for (int w = 0; w < threads; ++w) {
      ins.worker_completed.push_back(
          &reg.GetCounter("exec.worker." + std::to_string(w) + ".completed"));
    }
    return ins;
  }
};

}  // namespace

std::string WorkloadResult::Summary() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "workload: %zu queries (%zu ok, %zu partial, %zu shed) | "
      "wall %.3fs | %.1f qps | latency ms p50=%.2f p95=%.2f p99=%.2f "
      "max=%.2f | visits total=%llu max-peer=%llu",
      queries.size(), completed - partial, partial, shed, wall_s, qps,
      latency_ms.Percentile(50), latency_ms.Percentile(95),
      latency_ms.Percentile(99), latency_ms.max(),
      static_cast<unsigned long long>(total_stats.peers_visited),
      static_cast<unsigned long long>([this] {
        uint64_t m = 0;
        for (uint64_t v : peer_visits) m = std::max(m, v);
        return m;
      }()));
  return std::string(buf);
}

WorkloadResult Executor::Run(const std::vector<Job>& jobs,
                             size_t peer_universe) {
  const int threads = options_.threads;
  const ExecInstruments ins = ExecInstruments::Resolve(threads);

  WorkloadResult result;
  result.queries.resize(jobs.size());

  SharedLoadTable load(peer_universe, options_.lock_shards);
  std::vector<Rng> rngs;
  rngs.reserve(threads);
  for (int w = 0; w < threads; ++w) {
    // Distinct stream per (seed, worker); the multiplier keeps
    // (seed, worker) pairs from colliding across nearby seeds.
    rngs.emplace_back(options_.seed * 0x100000001b3ULL +
                      static_cast<uint64_t>(w) + 1);
  }
  std::vector<obs::Profiler> profilers(threads);
  tracers_.assign(threads, obs::Tracer());
  if (options_.journal != nullptr) {
    // Worker tracers mirror their admission spans into the shared journal
    // (each span is journaled under the trace id of the job it wraps).
    for (obs::Tracer& t : tracers_) t.SetJournal(options_.journal);
  }

  std::vector<std::unique_ptr<BoundedQueue<Task>>> queues;
  queues.reserve(threads);
  for (int w = 0; w < threads; ++w) {
    queues.push_back(
        std::make_unique<BoundedQueue<Task>>(options_.queue_capacity));
  }

  std::atomic<int64_t> queued{0};
  const Clock::time_point t0 = Clock::now();

  auto worker_fn = [&](int w) {
    JobContext ctx;
    ctx.worker = w;
    ctx.rng = &rngs[w];
    ctx.profiler = &profilers[w];
    ctx.tracer = options_.collect_spans ? &tracers_[w] : nullptr;
    ctx.load = &load;
    ctx.journal = options_.journal;

    Task task;
    while (queues[w]->Pop(&task)) {
      queued.fetch_sub(1, std::memory_order_relaxed);
      if (ins.queue_depth != nullptr) {
        ins.queue_depth->Set(
            static_cast<double>(queued.load(std::memory_order_relaxed)));
      }
      const Clock::time_point popped = Clock::now();
      const Job& job = jobs[task.index];
      QueryOutcome& out = result.queries[task.index];
      out.index = task.index;
      out.worker = w;
      out.wait_ms = MsBetween(task.admitted, popped);

      if (std::isfinite(job.deadline_ms) && out.wait_ms > job.deadline_ms) {
        out.shed = true;
        out.complete = false;
        out.total_ms = out.wait_ms;
        if (ins.shed != nullptr) ins.shed->Inc();
        continue;
      }

      JobResult r = job.run(ctx);
      const Clock::time_point done = Clock::now();
      out.answer = std::move(r.answer);
      out.stats = r.stats;
      out.coverage = r.coverage;
      out.complete = r.complete;
      out.completion_time = r.completion_time;
      out.initiator = r.initiator;
      out.trace_id = r.trace_id;
      out.run_ms = MsBetween(popped, done);
      out.total_ms = MsBetween(task.admitted, done);

      if (options_.slow_log != nullptr) {
        options_.slow_log->Observe(job.label, out.trace_id, out.total_ms,
                                   MsBetween(t0, done), out.trace_id != 0);
      }

      if (ctx.tracer != nullptr) {
        ctx.tracer->set_trace_id(out.trace_id);
        const uint32_t id = ctx.tracer->StartSpan(
            static_cast<uint32_t>(out.initiator), obs::kNoSpan,
            obs::SpanKind::kAdmission, 0, MsBetween(t0, task.admitted));
        obs::Span& span = ctx.tracer->span(id);
        span.tuples_in = out.stats.tuples_shipped;
        span.answer_tuples = out.answer.size();
        ctx.tracer->EndSpan(id, MsBetween(t0, done));
      }
      if (ins.completed != nullptr) ins.completed->Inc();
      if (!out.complete && ins.partial != nullptr) ins.partial->Inc();
      if (w < static_cast<int>(ins.worker_completed.size())) {
        ins.worker_completed[w]->Inc();
      }
    }
  };

  // Periodic registry snapshots are driven from this (single) admission
  // thread; Capture goes through the registry's locked value reads, so
  // racing worker-side metric creation is safe.
  const bool snapshotting =
      options_.snapshots != nullptr && options_.snapshot_every_ms > 0.0;
  double next_snapshot_ms = 0.0;
  auto maybe_snapshot = [&] {
    if (!snapshotting) return;
    const double now_ms = MsBetween(t0, Clock::now());
    if (now_ms >= next_snapshot_ms) {
      options_.snapshots->Capture(now_ms);
      next_snapshot_ms = now_ms + options_.snapshot_every_ms;
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  {
    for (int w = 0; w < threads; ++w) pool.emplace_back(worker_fn, w);

    maybe_snapshot();  // the t=0 baseline capture
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (options_.qps_target > 0.0) {
        const auto due =
            t0 + std::chrono::duration_cast<Clock::duration>(
                     std::chrono::duration<double>(static_cast<double>(i) /
                                                   options_.qps_target));
        std::this_thread::sleep_until(due);
      }
      Task task;
      task.index = i;
      task.admitted = Clock::now();
      // Push blocks while worker i%threads's queue is full: backpressure
      // throttles admission instead of buffering unboundedly.
      queues[i % threads]->Push(std::move(task));
      queued.fetch_add(1, std::memory_order_relaxed);
      if (ins.submitted != nullptr) ins.submitted->Inc();
      if (ins.queue_depth != nullptr) {
        ins.queue_depth->Set(
            static_cast<double>(queued.load(std::memory_order_relaxed)));
      }
      maybe_snapshot();
    }
    for (auto& q : queues) q->Close();
    for (std::thread& t : pool) t.join();
    if (snapshotting) {
      // Final capture after the drain, so the last window covers the
      // tail of the workload.
      options_.snapshots->Capture(MsBetween(t0, Clock::now()));
    }
  }

  result.wall_s = MsBetween(t0, Clock::now()) / 1000.0;
  result.profile.SetPeerUniverse(peer_universe);
  for (const obs::Profiler& p : profilers) result.profile.Merge(p);
  result.peer_visits = load.Snapshot();

  for (const QueryOutcome& out : result.queries) {
    if (out.shed) {
      ++result.shed;
      continue;
    }
    ++result.completed;
    if (!out.complete) ++result.partial;
    result.total_stats += out.stats;
    result.coverage += out.coverage;
    result.latency_ms.Observe(out.total_ms);
    result.wait_ms.Observe(out.wait_ms);
    result.run_ms.Observe(out.run_ms);
  }
  result.qps =
      result.wall_s > 0.0 ? result.completed / result.wall_s : 0.0;
  return result;
}

}  // namespace ripple::exec
