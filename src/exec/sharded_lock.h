#ifndef RIPPLE_EXEC_SHARDED_LOCK_H_
#define RIPPLE_EXEC_SHARDED_LOCK_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "overlay/types.h"

namespace ripple::exec {

/// Per-peer sharded mutexes: peer id -> one of `shards` mutexes. Guards
/// per-peer mutable state that concurrent queries share — today the
/// executor's live load table (and, through it, any per-peer accounting a
/// workload wants to keep); tomorrow per-peer store/router mutation under
/// load. Peer ids are dense array indices, so `id % shards` spreads
/// neighboring peers across different locks and two queries contend only
/// when they touch peers in the same shard at the same instant.
///
/// Lock ordering contract: callers hold at most ONE shard lock at a time
/// (all current call sites charge a single peer per acquisition), so no
/// ordering discipline — and no deadlock — is possible by construction.
/// Code that ever needs two peers atomically must acquire shards in
/// ascending shard-index order; `ShardOf` is public precisely so such a
/// caller can sort first.
class ShardedPeerMutex {
 public:
  explicit ShardedPeerMutex(size_t shards = kDefaultShards)
      : shards_(shards ? shards : 1) {}

  size_t shard_count() const { return shards_.size(); }
  size_t ShardOf(PeerId peer) const { return peer % shards_.size(); }
  std::mutex& Of(PeerId peer) { return shards_[ShardOf(peer)]; }

  /// RAII acquisition of the shard guarding `peer`.
  std::unique_lock<std::mutex> Lock(PeerId peer) {
    return std::unique_lock<std::mutex>(Of(peer));
  }

  static constexpr size_t kDefaultShards = 64;

 private:
  std::vector<std::mutex> shards_;
};

/// A dense per-peer visit counter shared by every executor worker and
/// guarded by ShardedPeerMutex — the concurrent sibling of the per-worker
/// obs::Profiler. The profilers are private per worker and merged after
/// the pool joins (exact, deterministic, but only visible at the end);
/// this table is updated live, which is what feeds mid-run gauges and
/// lets tests assert that sharded locking under real thread contention
/// loses no updates (the TSan suite hammers it).
class SharedLoadTable {
 public:
  explicit SharedLoadTable(size_t peers,
                           size_t shards = ShardedPeerMutex::kDefaultShards)
      : locks_(shards), loads_(peers, 0) {}

  /// Charges `n` visits to `peer`. Ids beyond the declared universe are
  /// ignored (a churned overlay can hand out fresh ids mid-run; dropping
  /// them beats resizing under a different shard's lock).
  void Charge(PeerId peer, uint64_t n = 1) {
    if (peer >= loads_.size()) return;
    std::unique_lock<std::mutex> lock = locks_.Lock(peer);
    loads_[peer] += n;
  }

  size_t peer_count() const { return loads_.size(); }

  /// Snapshot reads: exact once the workers have quiesced; while they run,
  /// each entry is read under its shard lock so the value is a consistent
  /// (if momentarily stale) count.
  uint64_t load(PeerId peer) {
    if (peer >= loads_.size()) return 0;
    std::unique_lock<std::mutex> lock = locks_.Lock(peer);
    return loads_[peer];
  }

  /// Full copy under all shard locks taken one at a time — intended for
  /// after-run aggregation, not hot paths.
  std::vector<uint64_t> Snapshot();

  uint64_t Total();
  uint64_t Max();

 private:
  ShardedPeerMutex locks_;
  std::vector<uint64_t> loads_;
};

}  // namespace ripple::exec

#endif  // RIPPLE_EXEC_SHARDED_LOCK_H_
