#include "exec/sharded_lock.h"

#include <algorithm>

namespace ripple::exec {

std::vector<uint64_t> SharedLoadTable::Snapshot() {
  std::vector<uint64_t> out(loads_.size(), 0);
  for (PeerId p = 0; p < loads_.size(); ++p) {
    out[p] = load(p);
  }
  return out;
}

uint64_t SharedLoadTable::Total() {
  uint64_t total = 0;
  for (PeerId p = 0; p < loads_.size(); ++p) total += load(p);
  return total;
}

uint64_t SharedLoadTable::Max() {
  uint64_t max = 0;
  for (PeerId p = 0; p < loads_.size(); ++p) max = std::max(max, load(p));
  return max;
}

}  // namespace ripple::exec
