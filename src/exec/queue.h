#ifndef RIPPLE_EXEC_QUEUE_H_
#define RIPPLE_EXEC_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace ripple::exec {

/// A bounded single-producer / single-consumer handoff queue with blocking
/// backpressure — the admission queue in front of each executor worker.
///
/// Semantics:
///  * `Push` blocks while the queue holds `capacity` items (backpressure:
///    the admitting thread stalls instead of buffering unboundedly) and
///    returns false iff the queue was closed while waiting.
///  * `TryPush` never blocks; it returns false when full or closed.
///  * `Pop` blocks until an item or close; returns false only when the
///    queue is closed AND drained, so no accepted item is ever dropped.
///  * `Close` wakes everyone; further pushes fail, pops drain the rest.
///
/// The mutex/condvar pair is deliberately boring: admission happens once
/// per query (milliseconds of work), so lock-free cleverness would buy
/// nothing and cost the determinism argument its simplicity.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity ? capacity : 1) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;  // closed and drained
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    std::unique_lock<std::mutex> lock(mu_);
    closed_ = true;
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t size() const {
    std::unique_lock<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace ripple::exec

#endif  // RIPPLE_EXEC_QUEUE_H_
