#ifndef RIPPLE_NET_TRAFFIC_H_
#define RIPPLE_NET_TRAFFIC_H_

#include <cstdint>
#include <string>

namespace ripple::net {

/// Measured bytes-on-wire of one query execution, split by message kind.
/// The per-kind sums mirror QueryStats::bytes_on_wire's charging rule
/// (bytes charged at the sender, exactly where messages are charged), so
/// `total()` equals the query's bytes_on_wire.
struct WireTraffic {
  uint64_t bytes_query = 0;
  uint64_t bytes_response = 0;
  uint64_t bytes_answer = 0;
  uint64_t bytes_ack = 0;
  /// Frames charged to the query (one per message; a response bundle of n
  /// states counts n frames).
  uint64_t frames = 0;
  /// Received datagrams that failed to decode (corruption on the wire);
  /// always 0 on a loopback transport. Truncation (not enough bytes to
  /// back the header or its declared payload) counts separately in
  /// frames_truncated; frames_rejected covers the semantic rejections
  /// (bad version, bad tag, payload decode failure).
  uint64_t frames_rejected = 0;
  uint64_t frames_truncated = 0;

  uint64_t total() const {
    return bytes_query + bytes_response + bytes_answer + bytes_ack;
  }

  WireTraffic& operator+=(const WireTraffic& o) {
    bytes_query += o.bytes_query;
    bytes_response += o.bytes_response;
    bytes_answer += o.bytes_answer;
    bytes_ack += o.bytes_ack;
    frames += o.frames;
    frames_rejected += o.frames_rejected;
    frames_truncated += o.frames_truncated;
    return *this;
  }

  std::string ToString() const;
};

/// Records one execution's traffic into the global metrics registry under
/// `net.bytes_*` / `net.frames_*` (the counters ripple_cli --metrics-out
/// exports). No-op unless obs::Registry::EnableGlobal(true) was called —
/// same contract as RecordCoverageMetrics.
void RecordTrafficMetrics(const WireTraffic& t);

}  // namespace ripple::net

#endif  // RIPPLE_NET_TRAFFIC_H_
