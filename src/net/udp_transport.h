#ifndef RIPPLE_NET_UDP_TRANSPORT_H_
#define RIPPLE_NET_UDP_TRANSPORT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "net/admin.h"
#include "net/peers.h"
#include "net/transport.h"

namespace ripple::net {

/// net::Transport over a nonblocking IPv4 UDP socket: the live-overlay
/// counterpart of LoopbackTransport. Send resolves `env.to` through the
/// peers file (or, for client ids, through addresses learned from
/// received datagrams) and hands the bytes to sendto(); Poll waits for
/// readability, reads one datagram, decodes its leading frame header into
/// the envelope and delivers it. Malformed, truncated, oversize and
/// unknown-sender datagrams are dropped and counted — UDP gives no other
/// recourse, and the engines' retransmission machinery is the recovery
/// path, exactly as over loopback.
///
/// Single-owner like every Transport: one daemon (or client) thread pumps
/// Poll and calls Send; the counters are plain fields.
class UdpSocketTransport : public Transport {
 public:
  /// Largest UDP payload this transport sends or expects (the IPv4
  /// 65,535-byte datagram limit minus IP/UDP headers). Larger datagrams
  /// are dropped at Send and counted in oversize_dropped — the sender's
  /// retry machinery then treats the hop as lossy, which it is.
  static constexpr size_t kMaxDatagram = 65507;

  /// Binds a nonblocking UDP socket to `listen` ("ip:port"; port 0 binds
  /// an ephemeral port, re-read into local_endpoint()). The peers table
  /// maps overlay ids to sockaddrs for Send.
  static Result<std::unique_ptr<UdpSocketTransport>> Open(
      const PeersFile& peers, const Endpoint& listen);

  ~UdpSocketTransport() override;

  UdpSocketTransport(const UdpSocketTransport&) = delete;
  UdpSocketTransport& operator=(const UdpSocketTransport&) = delete;

  void Send(const Envelope& env, std::vector<uint8_t> datagram) override;

  /// Receives one datagram, waiting up to `timeout_ms` for readability
  /// (0 = nonblocking probe). Returns false on timeout or when every
  /// readable datagram was dropped by validation.
  bool Poll(Datagram* out, int timeout_ms = 0) override;

  /// The bound address (with the real port after ephemeral bind).
  const Endpoint& local_endpoint() const { return local_; }

  // --- counters (single-owner; read from the owning thread) ---
  uint64_t datagrams_sent = 0;
  uint64_t datagrams_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t send_failures = 0;     // sendto errors (including EMSGSIZE)
  uint64_t oversize_dropped = 0;  // datagrams beyond kMaxDatagram
  uint64_t malformed_dropped = 0;  // short/truncated/unframed arrivals
  uint64_t unknown_peer_dropped = 0;  // unresolvable sender or target

  /// Point-in-time copy of the counters above, in the shape the admin
  /// plane ships (PeerDaemon::SetTransportCounters pulls through this).
  TransportCounters Counters() const {
    TransportCounters c;
    c.datagrams_sent = datagrams_sent;
    c.datagrams_received = datagrams_received;
    c.bytes_sent = bytes_sent;
    c.bytes_received = bytes_received;
    c.send_failures = send_failures;
    c.oversize_dropped = oversize_dropped;
    c.malformed_dropped = malformed_dropped;
    c.unknown_peer_dropped = unknown_peer_dropped;
    return c;
  }

 private:
  UdpSocketTransport() = default;

  struct SockAddr {  // opaque IPv4 sockaddr_in, kept POSIX-free here
    uint32_t addr_be = 0;
    uint16_t port_be = 0;
  };

  bool Resolve(PeerId to, SockAddr* out) const;

  int fd_ = -1;
  Endpoint local_;
  std::unordered_map<PeerId, SockAddr> peer_addrs_;
  // Client return addresses, learned from recvfrom on their queries.
  std::unordered_map<PeerId, SockAddr> client_addrs_;
  std::vector<uint8_t> recv_buf_;
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_UDP_TRANSPORT_H_
