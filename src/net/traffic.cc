#include "net/traffic.h"

#include <cstdio>

#include "obs/metrics.h"

namespace ripple::net {

std::string WireTraffic::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "bytes=%llu (query=%llu response=%llu answer=%llu ack=%llu) "
                "frames=%llu rejected=%llu truncated=%llu",
                static_cast<unsigned long long>(total()),
                static_cast<unsigned long long>(bytes_query),
                static_cast<unsigned long long>(bytes_response),
                static_cast<unsigned long long>(bytes_answer),
                static_cast<unsigned long long>(bytes_ack),
                static_cast<unsigned long long>(frames),
                static_cast<unsigned long long>(frames_rejected),
                static_cast<unsigned long long>(frames_truncated));
  return buf;
}

void RecordTrafficMetrics(const WireTraffic& t) {
  if (!obs::Registry::GlobalEnabled()) return;
  obs::Registry& reg = obs::Registry::Global();
  reg.GetCounter("net.bytes_query").Inc(t.bytes_query);
  reg.GetCounter("net.bytes_response").Inc(t.bytes_response);
  reg.GetCounter("net.bytes_answer").Inc(t.bytes_answer);
  reg.GetCounter("net.bytes_ack").Inc(t.bytes_ack);
  reg.GetCounter("net.bytes_total").Inc(t.total());
  reg.GetCounter("net.frames_shipped").Inc(t.frames);
  reg.GetCounter("net.frames_rejected").Inc(t.frames_rejected);
  reg.GetCounter("net.frames_truncated").Inc(t.frames_truncated);
}

}  // namespace ripple::net
