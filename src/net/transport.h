#ifndef RIPPLE_NET_TRANSPORT_H_
#define RIPPLE_NET_TRANSPORT_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "net/envelope.h"
#include "wire/frame.h"

namespace ripple::net {

/// The seam between the engines and the bytes they exchange. Every
/// AsyncEngine transmission is encoded into a framed datagram (one frame,
/// or several back-to-back frames for a response bundle) and handed to
/// the transport; whatever the transport RETURNS is what the receiver
/// decodes. Nothing can cheat past the serialization boundary: objects
/// never cross, only the returned bytes do.
///
/// Implementations may count, copy, corrupt or (in a future deployment)
/// actually send the bytes. Returning an empty vector models a datagram
/// the transport itself swallowed (the receiver sees nothing, the fault
/// machinery's timers take over).
class Transport {
 public:
  virtual ~Transport() = default;

  /// Ships one datagram described by `env`. Takes ownership of the bytes;
  /// returns the bytes the receiver will see.
  virtual std::vector<uint8_t> Ship(const Envelope& env,
                                    std::vector<uint8_t> datagram) = 0;
};

/// Default transport: a loopback wire. Asserts that every shipped
/// datagram is well-framed (each frame header parses and matches the
/// envelope) — the guarantee that no engine path skips encoding — and
/// counts shipped frames/bytes, then returns the bytes unchanged.
class LoopbackTransport : public Transport {
 public:
  std::vector<uint8_t> Ship(const Envelope& env,
                            std::vector<uint8_t> datagram) override {
    RIPPLE_CHECK(!datagram.empty() && "unframed transmission");
    wire::Reader r(datagram);
    while (r.remaining() > 0) {
      wire::FrameHeader h;
      RIPPLE_CHECK(wire::DecodeFrameHeader(&r, &h) &&
                   "transmission carries a malformed frame");
      RIPPLE_CHECK(h.id == env.id && h.from == env.from && h.to == env.to &&
                   h.tag == static_cast<uint8_t>(env.kind) &&
                   "frame header disagrees with its envelope");
      RIPPLE_CHECK(r.Skip(wire::FramePayloadSize(h)));
      frames_shipped_ += 1;
    }
    bytes_shipped_ += datagram.size();
    return datagram;
  }

  uint64_t bytes_shipped() const { return bytes_shipped_; }
  uint64_t frames_shipped() const { return frames_shipped_; }

 private:
  uint64_t bytes_shipped_ = 0;
  uint64_t frames_shipped_ = 0;
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_TRANSPORT_H_
