#ifndef RIPPLE_NET_TRANSPORT_H_
#define RIPPLE_NET_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "common/check.h"
#include "net/envelope.h"
#include "wire/frame.h"

namespace ripple::net {

/// One received datagram: the envelope of its (first) frame plus the raw
/// bytes exactly as they arrived.
struct Datagram {
  Envelope env;
  std::vector<uint8_t> bytes;
};

/// The seam between the engines and the bytes they exchange — shaped like
/// a real network endpoint. Every AsyncEngine transmission is encoded
/// into a framed datagram (one frame, or several back-to-back frames for
/// a response bundle) and handed to Send(), which is fire-and-forget: it
/// never returns the receiver's bytes, because no socket can. Whatever
/// arrives at the receiving end surfaces through exactly one of two
/// receive paths:
///
///  * push — SetReceiver(cb) installs a delivery callback; the transport
///    invokes it once per arriving datagram. LoopbackTransport delivers
///    synchronously inside Send(), which is what lets the discrete-event
///    engine keep its deterministic clock: the receiver schedules the
///    simulated delivery, the wire itself takes zero host time.
///  * pull — Poll(out, timeout_ms) pumps one datagram. Transports that
///    own real sockets (net::UdpSocketTransport) implement the receive
///    side here; the base class drains the inbox that Deliver() fills
///    when no receiver is installed.
///
/// Nothing can cheat past the serialization boundary: objects never
/// cross, only bytes do. A transport may count, reorder, corrupt or drop
/// datagrams in flight (dropping = simply never delivering); senders
/// recover through the fault machinery's timers, never through a return
/// value.
///
/// Transports are single-owner: receiver installation and the inbox are
/// unsynchronized, so concurrent engines must each use their own
/// transport instance (the executor builds one engine per job for this
/// reason). LoopbackTransport's counters are atomic so read-side
/// aggregation across workers stays well-defined.
class Transport {
 public:
  using Receiver =
      std::function<void(const Envelope& env, std::vector<uint8_t> bytes)>;

  virtual ~Transport() = default;

  /// Ships one datagram described by `env`. Takes ownership of the bytes;
  /// fire-and-forget — delivery (if any) happens through the receive path.
  virtual void Send(const Envelope& env, std::vector<uint8_t> datagram) = 0;

  /// Installs (or, with nullptr, removes) the push-delivery callback.
  /// Datagrams queued in the inbox while no receiver was installed stay
  /// queued for Poll; only subsequent deliveries go through the callback.
  void SetReceiver(Receiver receiver) { receiver_ = std::move(receiver); }
  bool has_receiver() const { return static_cast<bool>(receiver_); }

  /// Pull-delivery: pops one pending datagram into `*out`, returning
  /// false when none arrived within `timeout_ms`. The base implementation
  /// serves the in-memory inbox and never waits (nothing can arrive
  /// between calls without a Send); socket transports override it with a
  /// real readiness wait.
  virtual bool Poll(Datagram* out, int timeout_ms = 0) {
    (void)timeout_ms;
    if (inbox_.empty()) return false;
    *out = std::move(inbox_.front());
    inbox_.pop_front();
    return true;
  }

 protected:
  /// Hands one arriving datagram to the receive path: the installed
  /// receiver if any, otherwise the inbox that Poll drains.
  void Deliver(const Envelope& env, std::vector<uint8_t> bytes) {
    if (receiver_) {
      receiver_(env, std::move(bytes));
    } else {
      inbox_.push_back(Datagram{env, std::move(bytes)});
    }
  }

 private:
  Receiver receiver_;
  std::deque<Datagram> inbox_;
};

/// Default transport: a loopback wire. Asserts that every sent datagram
/// is well-framed (each frame header parses and matches the envelope) —
/// the guarantee that no engine path skips encoding — counts sent
/// frames/bytes, then delivers the bytes unchanged, synchronously.
class LoopbackTransport : public Transport {
 public:
  void Send(const Envelope& env, std::vector<uint8_t> datagram) override {
    RIPPLE_CHECK(!datagram.empty() && "unframed transmission");
    wire::Reader r(datagram);
    uint64_t frames = 0;
    while (r.remaining() > 0) {
      wire::FrameHeader h;
      RIPPLE_CHECK(wire::DecodeFrameHeader(&r, &h) &&
                   "transmission carries a malformed frame");
      RIPPLE_CHECK(h.id == env.id && h.from == env.from && h.to == env.to &&
                   h.tag == static_cast<uint8_t>(env.kind) &&
                   "frame header disagrees with its envelope");
      RIPPLE_CHECK(r.Skip(wire::FramePayloadSize(h)));
      frames += 1;
    }
    // Relaxed: the counters are sums, not synchronization points. Workers
    // in the concurrent executor each own their engine (and so their
    // loopback), but read-side aggregation may race a late writer.
    frames_shipped_.fetch_add(frames, std::memory_order_relaxed);
    bytes_shipped_.fetch_add(datagram.size(), std::memory_order_relaxed);
    Deliver(env, std::move(datagram));
  }

  uint64_t bytes_shipped() const {
    return bytes_shipped_.load(std::memory_order_relaxed);
  }
  uint64_t frames_shipped() const {
    return frames_shipped_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> bytes_shipped_{0};
  std::atomic<uint64_t> frames_shipped_{0};
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_TRANSPORT_H_
