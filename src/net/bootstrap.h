#ifndef RIPPLE_NET_BOOTSTRAP_H_
#define RIPPLE_NET_BOOTSTRAP_H_

#include <memory>

#include "common/rng.h"
#include "data/datasets.h"
#include "net/peers.h"
#include "overlay/midas/midas.h"

namespace ripple::net {

/// Rebuilds the overlay every live process must agree on. The peers file
/// distributes only this recipe — dataset name, sizes, seed — and each
/// daemon (and each client replica) reconstructs the identical MIDAS
/// overlay deterministically: same data stream (Rng(seed * 7919), as
/// `ripple_cli run` seeds it), same data-median splits, same join order.
/// Each daemon then *serves* only its assigned peers, but routing and
/// link regions need the whole structure, which is how a shared-nothing
/// bootstrap stays a single file. Sits above net's wire layer by design:
/// this is deployment glue, not protocol.
inline std::unique_ptr<MidasOverlay> BuildOverlay(const NetConfig& config) {
  Rng data_rng(config.seed * 7919);
  const TupleVec data = data::MakeByName(
      config.dataset, config.tuples, static_cast<int>(config.dims), &data_rng);
  MidasOptions opt;
  opt.dims = static_cast<int>(config.dims);
  opt.seed = config.seed;
  opt.split_rule = MidasSplitRule::kDataMedian;
  opt.border_pattern_links = config.patterns;
  auto overlay = std::make_unique<MidasOverlay>(opt);
  for (const Tuple& t : data) overlay->InsertTuple(t);
  while (overlay->NumPeers() < config.peers) overlay->Join();
  return overlay;
}

}  // namespace ripple::net

#endif  // RIPPLE_NET_BOOTSTRAP_H_
