#ifndef RIPPLE_NET_COVERAGE_H_
#define RIPPLE_NET_COVERAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "overlay/types.h"

namespace ripple::net {

/// What a fault-tolerant execution could and could not resolve. A query
/// whose coverage is clean (`complete()`) produced the exact answer; one
/// with unresolved links or lost answers folded in everything it received
/// and returns a flagged partial result.
///
/// Counter semantics (all per query execution):
///  * retries              — retransmissions sent (queries and answers).
///  * timeouts             — requester timers that expired unanswered.
///  * messages_lost        — transmissions the network dropped.
///  * messages_duplicated  — extra copies the network injected.
///  * duplicates_suppressed— deliveries ignored by message-id dedup.
///  * acks                 — progress acks sent for in-flight duplicates.
///  * late_responses       — responses arriving after the requester gave up.
///  * crash_drops          — deliveries addressed to an already-crashed peer.
///  * links_unresolved     — forwards abandoned after the retry budget;
///                           every abandoned target is in unreachable_peers.
///  * answers_lost         — answer deliveries lost beyond the retry budget.
struct Coverage {
  uint64_t retries = 0;
  uint64_t timeouts = 0;
  uint64_t messages_lost = 0;
  uint64_t messages_duplicated = 0;
  uint64_t duplicates_suppressed = 0;
  uint64_t acks = 0;
  uint64_t late_responses = 0;
  uint64_t crash_drops = 0;
  uint64_t links_unresolved = 0;
  uint64_t answers_lost = 0;
  /// Distinct peers a requester gave up on (sorted, deduplicated).
  std::vector<PeerId> unreachable_peers;
  /// Distinct crashed peers that actually affected this query (sorted).
  std::vector<PeerId> crashed_peers;

  /// True when nothing the answer depends on was abandoned: every forward
  /// was resolved and every answer delivery landed.
  bool complete() const { return links_unresolved == 0 && answers_lost == 0; }

  /// True when any fault-layer activity happened at all (useful to assert
  /// that a fault-free run had a silent network).
  bool quiet() const;

  Coverage& operator+=(const Coverage& o);

  /// "complete" or "partial(links=2 answers_lost=1): retries=5 ..." — only
  /// non-zero counters are printed.
  std::string ToString() const;
};

/// Records one execution's coverage into the global metrics registry under
/// `net.*` (net.retry.count, net.timeout.count, net.loss.count, ...).
/// No-op unless obs::Registry::EnableGlobal(true) was called.
void RecordCoverageMetrics(const Coverage& c);

}  // namespace ripple::net

#endif  // RIPPLE_NET_COVERAGE_H_
