#include "net/udp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/log.h"
#include "net/envelope.h"
#include "wire/frame.h"

namespace ripple::net {
namespace {

// "ip:port" → sockaddr_in pieces (numeric IPv4 only; the overlay runs on
// localhost and never needs a resolver).
bool ToSockAddr(const Endpoint& e, uint32_t* addr_be, uint16_t* port_be) {
  in_addr addr{};
  if (inet_pton(AF_INET, e.host.c_str(), &addr) != 1) return false;
  *addr_be = addr.s_addr;
  *port_be = htons(e.port);
  return true;
}

}  // namespace

Result<std::unique_ptr<UdpSocketTransport>> UdpSocketTransport::Open(
    const PeersFile& peers, const Endpoint& listen) {
  auto t = std::unique_ptr<UdpSocketTransport>(new UdpSocketTransport());
  for (const PeerAssignment& a : peers.assignments) {
    SockAddr sa;
    if (!ToSockAddr(a.endpoint, &sa.addr_be, &sa.port_be)) {
      return Status::InvalidArgument("endpoint '" + a.endpoint.ToString() +
                                     "' is not numeric-IPv4:port");
    }
    for (PeerId id = a.lo; id <= a.hi; ++id) t->peer_addrs_[id] = sa;
  }

  t->fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (t->fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  sockaddr_in bind_addr{};
  bind_addr.sin_family = AF_INET;
  if (inet_pton(AF_INET, listen.host.c_str(), &bind_addr.sin_addr) != 1) {
    return Status::InvalidArgument("listen address '" + listen.host +
                                   "' is not numeric IPv4");
  }
  bind_addr.sin_port = htons(listen.port);
  if (::bind(t->fd_, reinterpret_cast<sockaddr*>(&bind_addr),
             sizeof(bind_addr)) != 0) {
    return Status::Internal("bind(" + listen.ToString() +
                            "): " + std::strerror(errno));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(t->fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return Status::Internal(std::string("getsockname(): ") +
                            std::strerror(errno));
  }
  char host[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
  t->local_.host = host;
  t->local_.port = ntohs(bound.sin_port);

  const int flags = ::fcntl(t->fd_, F_GETFL, 0);
  if (flags < 0 || ::fcntl(t->fd_, F_SETFL, flags | O_NONBLOCK) != 0) {
    return Status::Internal(std::string("fcntl(O_NONBLOCK): ") +
                            std::strerror(errno));
  }
  t->recv_buf_.resize(kMaxDatagram + 1);  // +1 detects kernel truncation
  return t;
}

UdpSocketTransport::~UdpSocketTransport() {
  if (fd_ >= 0) ::close(fd_);
}

bool UdpSocketTransport::Resolve(PeerId to, SockAddr* out) const {
  auto it = peer_addrs_.find(to);
  if (it == peer_addrs_.end()) {
    it = client_addrs_.find(to);
    if (it == client_addrs_.end()) return false;
  }
  *out = it->second;
  return true;
}

void UdpSocketTransport::Send(const Envelope& env,
                              std::vector<uint8_t> datagram) {
  if (datagram.size() > kMaxDatagram) {
    oversize_dropped += 1;
    RIPPLE_LOG(kWarn, "udp: dropping %zu-byte datagram to peer %u (max %zu)",
               datagram.size(), env.to, kMaxDatagram);
    return;
  }
  SockAddr sa;
  if (!Resolve(env.to, &sa)) {
    unknown_peer_dropped += 1;
    RIPPLE_LOG(kWarn, "udp: no address for peer %u", env.to);
    return;
  }
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = sa.addr_be;
  dst.sin_port = sa.port_be;
  const ssize_t n =
      ::sendto(fd_, datagram.data(), datagram.size(), 0,
               reinterpret_cast<const sockaddr*>(&dst), sizeof(dst));
  if (n < 0) {
    // Fire-and-forget: a full socket buffer or EMSGSIZE looks like loss
    // to the sender, and the retry machinery recovers, as on any network.
    send_failures += 1;
    RIPPLE_LOG(kWarn, "udp: sendto peer %u failed: %s", env.to,
               std::strerror(errno));
    return;
  }
  datagrams_sent += 1;
  bytes_sent += static_cast<uint64_t>(n);
}

bool UdpSocketTransport::Poll(Datagram* out, int timeout_ms) {
  for (;;) {
    sockaddr_in src{};
    socklen_t src_len = sizeof(src);
    const ssize_t n =
        ::recvfrom(fd_, recv_buf_.data(), recv_buf_.size(), 0,
                   reinterpret_cast<sockaddr*>(&src), &src_len);
    if (n < 0) {
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        RIPPLE_LOG(kWarn, "udp: recvfrom failed: %s", std::strerror(errno));
        return false;
      }
      // Nothing readable: wait once, then retry the read loop.
      if (timeout_ms == 0) return false;
      pollfd pfd{fd_, POLLIN, 0};
      const int ready = ::poll(&pfd, 1, timeout_ms);
      if (ready <= 0) return false;
      timeout_ms = 0;  // the retry after readiness must not wait again
      continue;
    }
    datagrams_received += 1;
    bytes_received += static_cast<uint64_t>(n);
    // A read filling the whole buffer means the kernel truncated a
    // datagram beyond kMaxDatagram; its tail is gone, drop it.
    if (static_cast<size_t>(n) >= recv_buf_.size()) {
      malformed_dropped += 1;
      continue;
    }
    std::vector<uint8_t> bytes(recv_buf_.begin(), recv_buf_.begin() + n);
    wire::Reader r(bytes);
    Envelope env;
    if (!DecodeEnvelopeFrame(&r, &env)) {
      malformed_dropped += 1;
      continue;
    }
    // Senders must be resolvable for the reply path: overlay peers through
    // the peers file, clients through the address we are looking at right
    // now. Anything else is not part of this overlay — drop it.
    if (IsClientId(env.from)) {
      client_addrs_[env.from] =
          SockAddr{src.sin_addr.s_addr, src.sin_port};
    } else if (peer_addrs_.find(env.from) == peer_addrs_.end()) {
      unknown_peer_dropped += 1;
      continue;
    }
    out->env = env;
    out->bytes = std::move(bytes);
    return true;
  }
}

}  // namespace ripple::net
