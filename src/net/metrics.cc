#include "net/metrics.h"

#include <cstdio>

namespace ripple {

std::string QueryStats::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "latency=%llu hops, visited=%llu peers, messages=%llu, "
                "tuples=%llu",
                static_cast<unsigned long long>(latency_hops),
                static_cast<unsigned long long>(peers_visited),
                static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(tuples_shipped));
  return buf;
}

uint64_t StatsAccumulator::LatencyPercentile(double p) const {
  if (batch_.empty()) return 0;
  std::vector<uint64_t> values;
  values.reserve(batch_.size());
  for (const auto& s : batch_) values.push_back(s.latency_hops);
  std::sort(values.begin(), values.end());
  const double clamped = std::min(std::max(p, 0.0), 100.0);
  size_t rank = static_cast<size_t>(clamped / 100.0 *
                                    static_cast<double>(values.size()));
  if (rank >= values.size()) rank = values.size() - 1;
  return values[rank];
}

}  // namespace ripple
