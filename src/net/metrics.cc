#include "net/metrics.h"

#include <cstdio>

#include "obs/metrics.h"

namespace ripple {

std::string QueryStats::ToString() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "latency=%llu hops, visited=%llu peers, messages=%llu, "
                "tuples=%llu, bytes=%llu",
                static_cast<unsigned long long>(latency_hops),
                static_cast<unsigned long long>(peers_visited),
                static_cast<unsigned long long>(messages),
                static_cast<unsigned long long>(tuples_shipped),
                static_cast<unsigned long long>(bytes_on_wire));
  return buf;
}

uint64_t StatsAccumulator::LatencyPercentile(double p) const {
  return Percentile(&QueryStats::latency_hops, p);
}

uint64_t StatsAccumulator::Percentile(uint64_t QueryStats::* field,
                                      double p) const {
  // Single percentile implementation for the whole codebase: the
  // nearest-rank rule in obs (empty batch -> 0, p = 0 -> min,
  // p = 100 -> max, p clamped to [0, 100]).
  std::vector<double> values;
  values.reserve(batch_.size());
  for (const auto& s : batch_) values.push_back(static_cast<double>(s.*field));
  std::sort(values.begin(), values.end());
  return static_cast<uint64_t>(obs::NearestRankPercentile(values, p));
}

}  // namespace ripple
