#include "net/monitor.h"

#include <chrono>
#include <cstdio>
#include <utility>

#include "net/protocol.h"
#include "wire/buffer.h"

namespace ripple::net {
namespace {

using SteadyClock = std::chrono::steady_clock;

double MsSince(SteadyClock::time_point t0) {
  return std::chrono::duration<double, std::milli>(SteadyClock::now() - t0)
      .count();
}

}  // namespace

ClusterMonitor::ClusterMonitor(const PeersFile& peers, Transport* transport,
                               PeerId self, MonitorOptions opts)
    : peers_(peers), transport_(transport), self_(self), opts_(opts) {}

bool ClusterMonitor::Probe(PeerId target, MessageKind kind,
                           std::vector<uint8_t>* payload, double* rtt_ms) {
  for (int attempt = 0; attempt < opts_.probe_attempts; ++attempt) {
    const uint64_t id = MakeMessageId(self_, next_seq_++);
    const Envelope env{id, self_, target, kind, attempt, {}};
    wire::Buffer buf;
    const size_t start = BeginEnvelopeFrame(env, &buf);
    wire::EndFrame(&buf, start);
    const SteadyClock::time_point sent = SteadyClock::now();
    transport_->Send(env, buf.Take());
    for (;;) {
      const double waited = MsSince(sent);
      const int left =
          opts_.probe_timeout_ms - static_cast<int>(waited);
      if (left <= 0) break;  // this attempt timed out
      Datagram d;
      if (!transport_->Poll(&d, left)) break;
      // Only this probe's reply counts; anything else (a stale reply
      // from an abandoned attempt, a misrouted frame) is drained.
      if (d.env.id != id || d.env.kind != kind) continue;
      wire::Reader r(d.bytes);
      Envelope echo;
      if (!DecodeEnvelopeFrame(&r, &echo)) continue;
      payload->assign(d.bytes.begin() + static_cast<long>(r.position()),
                      d.bytes.end());
      if (rtt_ms != nullptr) *rtt_ms = MsSince(sent);
      return true;
    }
  }
  return false;
}

ClusterSample ClusterMonitor::Scrape(double at_ms) {
  ClusterSample sample;
  sample.at_ms = at_ms;
  std::vector<uint64_t> loads;
  for (const Endpoint& ep : peers_.Processes()) {
    EndpointStatus es;
    es.endpoint = ep;
    const std::vector<PeerId> assigned = peers_.PeersAt(ep);
    es.probe_peer = assigned.empty() ? kInvalidPeer : assigned.front();
    sample.totals.endpoints += 1;
    if (es.probe_peer == kInvalidPeer) {
      sample.endpoints.push_back(std::move(es));
      continue;
    }
    // Four probes per endpoint, each correlated by its own message id.
    // Health last: its verdict then reflects the same serve-loop pass
    // that answered the heavier scrapes.
    std::vector<uint8_t> payload;
    bool ok = Probe(es.probe_peer, MessageKind::kAdminPing, &payload,
                    &es.rtt_ms);
    if (ok) {
      wire::Reader r(payload);
      ok = DecodeAdminPong(&r, &es.pong) && r.remaining() == 0;
    }
    if (ok && Probe(es.probe_peer, MessageKind::kAdminStats, &payload,
                    nullptr)) {
      wire::Reader r(payload);
      ok = DecodeStatsReport(&r, &es.report) && r.remaining() == 0;
    } else {
      ok = false;
    }
    if (ok && Probe(es.probe_peer, MessageKind::kAdminSnapshot, &payload,
                    nullptr)) {
      wire::Reader r(payload);
      ok = DecodeSnapshot(&r, &es.snapshot) && r.remaining() == 0;
    } else {
      ok = false;
    }
    if (ok && Probe(es.probe_peer, MessageKind::kAdminHealth, &payload,
                    nullptr)) {
      wire::Reader r(payload);
      ok = DecodeHealthReport(&r, &es.health) && r.remaining() == 0;
    } else {
      ok = false;
    }
    es.healthy = ok;
    if (ok) {
      sample.totals.healthy += 1;
      AddInto(&sample.totals.stats, es.report.stats);
      AddInto(&sample.totals.transport, es.report.transport);
      AddInto(&sample.totals.queues, es.report.queues);
      loads.push_back(es.report.stats.queries_served);
    }
    sample.endpoints.push_back(std::move(es));
  }
  sample.totals.load_skew = obs::ComputeSkew(loads);
  if (has_prev_ && sample.at_ms > prev_at_ms_ &&
      sample.totals.stats.queries_served >= prev_queries_) {
    const double window_s = (sample.at_ms - prev_at_ms_) / 1000.0;
    sample.totals.qps = static_cast<double>(
                            sample.totals.stats.queries_served -
                            prev_queries_) /
                        window_s;
  }
  has_prev_ = true;
  prev_at_ms_ = sample.at_ms;
  prev_queries_ = sample.totals.stats.queries_served;
  return sample;
}

bool ClusterMonitor::WaitHealthy(int deadline_ms) {
  const SteadyClock::time_point t0 = SteadyClock::now();
  std::vector<Endpoint> processes = peers_.Processes();
  std::vector<bool> up(processes.size(), false);
  for (;;) {
    size_t healthy = 0;
    for (size_t i = 0; i < processes.size(); ++i) {
      if (up[i]) {
        healthy += 1;
        continue;
      }
      const std::vector<PeerId> assigned = peers_.PeersAt(processes[i]);
      if (assigned.empty()) continue;
      std::vector<uint8_t> payload;
      if (Probe(assigned.front(), MessageKind::kAdminPing, &payload,
                nullptr)) {
        up[i] = true;
        healthy += 1;
      }
    }
    if (healthy == processes.size()) return true;
    if (MsSince(t0) >= deadline_ms) return false;
  }
}

std::string ClusterMonitor::Dashboard(const ClusterSample& sample) {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "cluster @%.0fms: %llu/%llu healthy, qps=%.1f gini=%.3f "
                "peak/mean=%.2f\n",
                sample.at_ms,
                static_cast<unsigned long long>(sample.totals.healthy),
                static_cast<unsigned long long>(sample.totals.endpoints),
                sample.totals.qps, sample.totals.load_skew.gini,
                sample.totals.load_skew.peak_to_mean);
  out += line;
  std::snprintf(line, sizeof(line),
                "  %-21s %-7s %8s %8s %8s %8s %8s %8s\n", "endpoint", "state",
                "rtt_ms", "queries", "answers", "retrans", "rejects",
                "open");
  out += line;
  for (const EndpointStatus& es : sample.endpoints) {
    if (!es.healthy) {
      std::snprintf(line, sizeof(line), "  %-21s %-7s %8s\n",
                    es.endpoint.ToString().c_str(), "DOWN", "-");
      out += line;
      continue;
    }
    std::snprintf(
        line, sizeof(line),
        "  %-21s %-7s %8.2f %8llu %8llu %8llu %8llu %8llu\n",
        es.endpoint.ToString().c_str(), "up", es.rtt_ms,
        static_cast<unsigned long long>(es.report.stats.queries_served),
        static_cast<unsigned long long>(es.report.stats.answers_finalized),
        static_cast<unsigned long long>(es.report.stats.retransmissions),
        static_cast<unsigned long long>(es.report.stats.frames_rejected),
        static_cast<unsigned long long>(es.report.queues.open_sessions));
    out += line;
  }
  const TransportCounters& t = sample.totals.transport;
  std::snprintf(line, sizeof(line),
                "  wire: %llu in / %llu out datagrams; dropped: %llu "
                "malformed, %llu oversize, %llu unknown-sender\n",
                static_cast<unsigned long long>(t.datagrams_received),
                static_cast<unsigned long long>(t.datagrams_sent),
                static_cast<unsigned long long>(t.malformed_dropped),
                static_cast<unsigned long long>(t.oversize_dropped),
                static_cast<unsigned long long>(t.unknown_peer_dropped));
  out += line;
  return out;
}

std::string ClusterMonitor::SampleToJson(const ClusterSample& sample) {
  char head[64];
  std::snprintf(head, sizeof(head), "{\"at_ms\":%.3f,\"endpoints\":[",
                sample.at_ms);
  std::string out = head;
  bool first = true;
  for (const EndpointStatus& es : sample.endpoints) {
    if (!first) out += ",";
    first = false;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"endpoint\":\"%s\",\"healthy\":%s,\"rtt_ms\":%.3f",
                  es.endpoint.ToString().c_str(),
                  es.healthy ? "true" : "false", es.rtt_ms);
    out += buf;
    if (es.healthy) {
      out += ",\"report\":" + StatsReportJson(es.report);
      out += ",\"snapshot\":" + SnapshotJson(es.snapshot);
    }
    out += "}";
  }
  out += "],\"totals\":{";
  char tot[160];
  std::snprintf(tot, sizeof(tot),
                "\"endpoints\":%llu,\"healthy\":%llu,\"qps\":%.3f,"
                "\"gini\":%.6f,\"peak_to_mean\":%.6f,",
                static_cast<unsigned long long>(sample.totals.endpoints),
                static_cast<unsigned long long>(sample.totals.healthy),
                sample.totals.qps, sample.totals.load_skew.gini,
                sample.totals.load_skew.peak_to_mean);
  out += tot;
  out += "\"stats\":" + DaemonStatsJson(sample.totals.stats);
  out += ",\"transport\":" + TransportCountersJson(sample.totals.transport);
  out += ",\"queues\":" + QueueDepthsJson(sample.totals.queues);
  out += "}}";
  return out;
}

}  // namespace ripple::net
