#ifndef RIPPLE_NET_DAEMON_H_
#define RIPPLE_NET_DAEMON_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/log.h"
#include "net/admin.h"
#include "net/envelope.h"
#include "net/fault.h"
#include "net/peers.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "net/wall_clock.h"
#include "obs/journal.h"
#include "obs/profile.h"
#include "ripple/wire_codec.h"

namespace ripple::net {

/// One process of the live overlay: serves the rank-query protocol for
/// the peers assigned to it, over a Transport (UDP in production, any
/// Transport in tests). The daemon is the wall-clock sibling of
/// AsyncEngine's Runtime — same per-session procedure (Algorithms 1-3:
/// fast fan-out / prioritized slow walk, state merge, local answer), same
/// wire formats through the same WireCodec, but driven by real datagrams
/// and WallTimers instead of the discrete-event queue, and serving all
/// four policies at once (live query frames carry a PolicyTag byte;
/// docs/NET.md).
///
/// Reliability is requester-driven, exactly like the simulator's fault
/// protocol: a requester retransmits its query with capped backoff until
/// a response arrives or the retry budget is spent; a callee acks queries
/// whose session is still running and replays the cached reply datagram
/// for finished ones (dedup by message id). Answers convergecast up the
/// query tree inside reply datagrams — each session merges its children's
/// partial answers with its own local answer — so the peer serving the
/// client folds the complete answer and ships it back in one datagram;
/// the client's own retransmissions cover its loss. Every policy's
/// FinalizeAnswer canonicalizes order, which is what makes the tree-merge
/// byte-identical to the simulator's flat merge.
///
/// Single-threaded: one thread owns the daemon and pumps ServeLoop (or
/// ServeOnce / Dispatch in tests).
template <typename Overlay>
class PeerDaemon {
 public:
  /// `local_peers`: the overlay ids this process serves (from
  /// PeersFile::PeersAt on its endpoint). `retry` is interpreted in
  /// milliseconds (the simulator reads the same struct in hops).
  PeerDaemon(const Overlay* overlay, Transport* transport,
             std::vector<PeerId> local_peers, RetryOptions retry = {})
      : overlay_(overlay),
        transport_(transport),
        retry_(retry),
        dedup_(retry.dedup_window),
        local_peers_(local_peers.begin(), local_peers.end()),
        start_(std::chrono::steady_clock::now()),
        topk_(this),
        skyline_(this),
        skyband_(this),
        range_(this) {}

  void SetJournal(obs::JournalSet* journal) { journal_ = journal; }
  void SetProfiler(obs::Profiler* profiler) { profiler_ = profiler; }

  /// Mirrors the daemon's counters into `registry` (SyncRegistry / admin
  /// snapshot requests drive the sync), so `serve --metrics-out` and
  /// windowed snapshots carry net.daemon.* / net.udp.* live.
  void SetRegistry(obs::Registry* registry) { registry_ = registry; }

  /// Pull hook for the transport's datagram counters (the daemon only
  /// knows the abstract Transport; `serve` passes a lambda reading its
  /// UdpSocketTransport). Feeds stats replies and the registry bridge.
  void SetTransportCounters(std::function<TransportCounters()> fn) {
    transport_counters_ = std::move(fn);
  }

  const DaemonStats& stats() const { return stats_; }
  WallTimers& timers() { return timers_; }

  double UptimeMs() const { return NowMs(); }

  /// Instantaneous queue/wheel depths (the kAdminStats "right now" half).
  QueueDepths Depths() const {
    QueueDepths q;
    q.open_sessions = open_sessions_;
    q.sessions_total = topk_.sessions.size() + skyline_.sessions.size() +
                       skyband_.sessions.size() + range_.sessions.size();
    q.pending_requests = inflight_requests_;
    q.timers_pending = timers_.pending();
    q.dedup_tracked = dedup_.size();
    return q;
  }

  /// The full counter scrape: what a kAdminStats reply carries and what
  /// `serve --stats-out` writes at shutdown (same fields, same names).
  AdminStatsReport StatsReport() const {
    AdminStatsReport rep;
    rep.uptime_ms = static_cast<uint64_t>(NowMs());
    rep.peer_lo = *std::min_element(local_peers_.begin(), local_peers_.end());
    rep.peer_hi = *std::max_element(local_peers_.begin(), local_peers_.end());
    rep.stats = stats_;
    if (transport_counters_) rep.transport = transport_counters_();
    rep.queues = Depths();
    return rep;
  }

  /// Pushes current counters/depths into the registry (no-op without
  /// SetRegistry). Callers: admin snapshot requests, serve's periodic
  /// snapshot capture, and the shutdown --metrics-out flush.
  void SyncRegistry() {
    if (registry_ == nullptr) return;
    StatsBridge bridge(registry_);
    bridge.SyncStats(stats_);
    if (transport_counters_) bridge.SyncTransport(transport_counters_());
    bridge.SyncQueues(Depths(), NowMs());
  }

  /// One pump iteration: run due timers, wait up to `max_wait_ms` for a
  /// datagram (bounded by the next timer), dispatch everything readable.
  /// Returns the number of datagrams handled.
  int ServeOnce(int max_wait_ms) {
    timers_.RunDue();
    int wait = timers_.NextDelayMs();
    if (wait < 0 || wait > max_wait_ms) wait = max_wait_ms;
    int handled = 0;
    Datagram d;
    while (transport_->Poll(&d, handled == 0 ? wait : 0)) {
      Dispatch(std::move(d));
      handled += 1;
    }
    timers_.RunDue();
    return handled;
  }

  /// Serves until `*stop` turns true (a signal handler's flag).
  void ServeLoop(const std::atomic<bool>& stop, int tick_ms = 50) {
    while (!stop.load(std::memory_order_relaxed)) ServeOnce(tick_ms);
  }

  /// Protocol entry point, public so tests can inject datagrams (with
  /// reordering, duplication, truncation) without a socket.
  void Dispatch(Datagram d) {
    switch (d.env.kind) {
      case MessageKind::kQuery:
        HandleQuery(d);
        break;
      case MessageKind::kResponse:
        HandleResponse(d);
        break;
      case MessageKind::kAck:
        HandleAck(d);
        break;
      case MessageKind::kAnswer:
        // Bare answers address clients; a daemon receiving one saw a
        // misrouted or stale datagram.
        stats_.misdelivered += 1;
        break;
      case MessageKind::kAdminPing:
      case MessageKind::kAdminStats:
      case MessageKind::kAdminSnapshot:
      case MessageKind::kAdminHealth:
        HandleAdmin(d);
        break;
    }
  }

 private:
  using Clock = std::chrono::steady_clock;

  template <typename Policy>
  struct NetSession {
    using Area = typename Overlay::Area;
    PeerId peer = kInvalidPeer;       // the local peer running this session
    PeerId requester = kInvalidPeer;  // parent peer, or a client id
    uint64_t origin_req = 0;          // the request id this session answers
    typename Policy::Query query{};
    typename Policy::GlobalState incoming{};
    typename Policy::GlobalState global{};
    typename Policy::LocalState local{};
    int r = 0;
    bool fast = false;
    bool finished = false;
    // Fast sessions collect children's states unmerged (Alg. 3's
    // convergecast); slow ones merge into `local`.
    std::vector<typename Policy::LocalState> bundle;
    struct Candidate {
      PeerId target;
      Area area;
      double priority;
    };
    std::vector<Candidate> pending;
    size_t next_candidate = 0;
    int outstanding_children = 0;
    // Own local answer merged with every child's partial answer.
    typename Policy::Answer answer_acc{};
    // The encoded reply datagram, kept after finish as the reply cache.
    std::vector<uint8_t> reply_frame;
  };

  /// A child query forward awaiting its response. Same byte-snapshot
  /// discipline as sim's PendingRequest: retransmissions reship `frame`
  /// verbatim under the same message id.
  struct Pending {
    PolicyTag tag = PolicyTag::kTopK;
    int session = -1;  // requester session slot in the tag's shard
    PeerId from = kInvalidPeer;
    PeerId target = kInvalidPeer;
    std::vector<uint8_t> frame;
    int strikes = 0;
    double timeout_ms = 0;
    bool resolved = false;
    uint64_t timer = 0;
  };

  template <typename Policy>
  struct Shard {
    explicit Shard(PeerDaemon* d)
        : codec(d->overlay_, &policy) {}
    Policy policy;
    WireCodec<Overlay, Policy> codec;
    std::vector<NetSession<Policy>> sessions;
  };

  Shard<TopKPolicy>& ShardOf(TopKPolicy*) { return topk_; }
  Shard<SkylinePolicy>& ShardOf(SkylinePolicy*) { return skyline_; }
  Shard<SkybandPolicy>& ShardOf(SkybandPolicy*) { return skyband_; }
  Shard<RangePolicy>& ShardOf(RangePolicy*) { return range_; }

  double NowMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

  void JournalFrame(obs::JournalEventKind kind, PeerId peer,
                    const Envelope& env, uint64_t bytes) {
    if (journal_ == nullptr) return;
    obs::JournalEvent e;
    e.kind = kind;
    e.peer = peer;
    e.sim_time = NowMs();
    e.trace_id = env.trace.trace_id;
    e.msg_id = env.id;
    e.msg_kind = static_cast<uint8_t>(env.kind);
    e.parent_span = env.trace.parent_span;
    e.bytes = bytes;
    e.attempt = env.attempt;
    journal_->Record(e);
  }

  // --- admin plane --------------------------------------------------------

  /// Answers one monitoring probe. Requests are empty-payload frames; any
  /// payload bytes mean a corrupt or foreign frame, counted and dropped
  /// exactly like an undecodable query. The reply reuses the request's
  /// kind and id (the monitor correlates by id, like the query protocol)
  /// and flows through the normal Send path. No dedup: admin reads are
  /// idempotent, so answering a duplicated probe twice is harmless.
  /// Admin traffic stays out of the journals — they record the query
  /// protocol, and trace assembly must not see recv events whose send
  /// side lives in another process's (unjournaled) monitor.
  void HandleAdmin(const Datagram& d) {
    if (local_peers_.find(d.env.to) == local_peers_.end()) {
      stats_.misdelivered += 1;
      return;
    }
    wire::Reader r(d.bytes);
    Envelope env;
    if (!DecodeEnvelopeFrame(&r, &env) || r.remaining() != 0) {
      stats_.frames_rejected += 1;
      return;
    }
    stats_.admin_requests += 1;
    const Envelope reply{env.id, env.to, env.from, env.kind, 0, env.trace};
    wire::Buffer buf;
    const size_t start = BeginEnvelopeFrame(reply, &buf);
    switch (env.kind) {
      case MessageKind::kAdminPing: {
        AdminPong pong;
        pong.uptime_ms = static_cast<uint64_t>(NowMs());
        pong.peers_served = local_peers_.size();
        EncodeAdminPong(pong, &buf);
        break;
      }
      case MessageKind::kAdminStats:
        EncodeStatsReport(StatsReport(), &buf);
        break;
      case MessageKind::kAdminSnapshot: {
        obs::Snapshot snap;
        snap.at_ms = NowMs();
        if (registry_ != nullptr) {
          SyncRegistry();
          snap.counters = registry_->CounterValues();
          snap.gauges = registry_->GaugeValues();
        }
        EncodeSnapshot(snap, &buf);
        break;
      }
      case MessageKind::kAdminHealth: {
        AdminHealthReport h;
        h.healthy = true;  // it answered; the monitor marks silence
        h.uptime_ms = static_cast<uint64_t>(NowMs());
        h.open_sessions = open_sessions_;
        h.pending_requests = inflight_requests_;
        h.queries_served = stats_.queries_served;
        EncodeHealthReport(h, &buf);
        break;
      }
      default:
        return;  // unreachable: Dispatch only routes admin kinds here
    }
    wire::EndFrame(&buf, start);
    transport_->Send(reply, buf.Take());
  }

  // --- incoming queries --------------------------------------------------

  void HandleQuery(const Datagram& d) {
    if (local_peers_.find(d.env.to) == local_peers_.end()) {
      stats_.misdelivered += 1;
      return;
    }
    if (const int64_t* slot = dedup_.Lookup(d.env.id)) {
      // Retransmission or network duplicate: replay the cached reply of a
      // finished session, or ack that the session is still running.
      stats_.duplicates_suppressed += 1;
      const PolicyTag tag = static_cast<PolicyTag>(*slot & 0xff);
      const int sid = static_cast<int>(*slot >> 8);
      switch (tag) {
        case PolicyTag::kTopK: ReplyOrAck(topk_, sid, d.env); break;
        case PolicyTag::kSkyline: ReplyOrAck(skyline_, sid, d.env); break;
        case PolicyTag::kSkyband: ReplyOrAck(skyband_, sid, d.env); break;
        case PolicyTag::kRange: ReplyOrAck(range_, sid, d.env); break;
      }
      return;
    }
    wire::Reader r(d.bytes);
    Envelope env;
    if (!DecodeEnvelopeFrame(&r, &env)) {
      stats_.frames_rejected += 1;
      return;
    }
    const uint8_t raw_tag = r.U8();
    if (!r.ok() || !ValidPolicyTag(raw_tag)) {
      stats_.frames_rejected += 1;
      return;
    }
    const uint64_t wire_bytes = d.bytes.size();
    switch (static_cast<PolicyTag>(raw_tag)) {
      case PolicyTag::kTopK: OpenSession(topk_, env, &r, wire_bytes); break;
      case PolicyTag::kSkyline:
        OpenSession(skyline_, env, &r, wire_bytes);
        break;
      case PolicyTag::kSkyband:
        OpenSession(skyband_, env, &r, wire_bytes);
        break;
      case PolicyTag::kRange: OpenSession(range_, env, &r, wire_bytes); break;
    }
  }

  template <typename Policy>
  void ReplyOrAck(Shard<Policy>& shard, int sid, const Envelope& env) {
    NetSession<Policy>& s = shard.sessions[sid];
    if (s.finished) {
      SendReply(shard, sid, /*retransmit=*/true);
      return;
    }
    stats_.acks_sent += 1;
    const Envelope ack{env.id, s.peer, s.requester, MessageKind::kAck, 0,
                       env.trace};
    wire::Buffer buf;
    shard.codec.EncodeAckMessage(ack, &buf);
    JournalFrame(obs::JournalEventKind::kFrameSend, s.peer, ack, buf.size());
    transport_->Send(ack, buf.Take());
  }

  template <typename Policy>
  void OpenSession(Shard<Policy>& shard, const Envelope& env, wire::Reader* r,
                   uint64_t wire_bytes) {
    typename Policy::Query q{};
    typename Policy::GlobalState g{};
    typename Overlay::Area area{};
    int64_t hops = 0;
    if (!shard.codec.DecodeQueryPayload(r, &q, &g, &area, &hops) || !r->ok() ||
        r->remaining() != 0) {
      // Dropped without entering the dedup window: the requester's
      // retransmission (possibly clean this time) must not be suppressed.
      stats_.frames_rejected += 1;
      return;
    }
    JournalFrame(obs::JournalEventKind::kFrameRecv, env.to, env, wire_bytes);
    const int sid = static_cast<int>(shard.sessions.size());
    shard.sessions.emplace_back();
    dedup_.Insert(env.id, (static_cast<int64_t>(sid) << 8) |
                              static_cast<int64_t>(
                                  PolicyTagOf<Policy>::value));
    NetSession<Policy>& s = shard.sessions.back();
    s.peer = env.to;
    s.requester = env.from;
    s.origin_req = env.id;
    s.query = std::move(q);
    s.incoming = std::move(g);
    s.r = static_cast<int>(hops);
    s.fast = s.r <= 0;
    stats_.queries_served += 1;
    open_sessions_ += 1;
    if (profiler_ != nullptr) profiler_->OnSpan(s.peer);

    const auto& node = overlay_->GetPeer(s.peer);
    s.local = shard.policy.ComputeLocalState(node.store, s.query, s.incoming);
    s.global = shard.policy.ComputeGlobalState(s.query, s.incoming, s.local);

    if (s.fast) {
      // Algorithm 1 / Algorithm 3 second loop: forward everywhere at once.
      std::vector<std::pair<PeerId, typename Overlay::Area>> targets;
      for (const auto& link : node.links) {
        typename Overlay::Area restricted;
        if (!Overlay::IntersectArea(link.region, area, &restricted)) continue;
        if (!shard.policy.IsLinkRelevant(s.query, s.global, restricted)) {
          continue;
        }
        targets.emplace_back(link.target, std::move(restricted));
      }
      s.outstanding_children = static_cast<int>(targets.size());
      for (auto& [target, restricted] : targets) {
        NewRequest(shard, sid, target, shard.sessions[sid].global,
                   std::move(restricted), 0);
      }
      if (shard.sessions[sid].outstanding_children == 0) {
        FinishSession(shard, sid);
      }
    } else {
      // Algorithm 2 / Algorithm 3 first loop: prioritized, sequential.
      for (const auto& link : node.links) {
        typename Overlay::Area restricted;
        if (!Overlay::IntersectArea(link.region, area, &restricted)) continue;
        const double priority = shard.policy.LinkPriority(s.query, restricted);
        s.pending.push_back(typename NetSession<Policy>::Candidate{
            link.target, std::move(restricted), priority});
      }
      std::stable_sort(
          s.pending.begin(), s.pending.end(),
          [](const auto& a, const auto& b) { return a.priority > b.priority; });
      AdvanceSlow(shard, sid);
    }
  }

  template <typename Policy>
  void AdvanceSlow(Shard<Policy>& shard, int sid) {
    while (shard.sessions[sid].next_candidate <
           shard.sessions[sid].pending.size()) {
      NetSession<Policy>& s = shard.sessions[sid];
      auto& c = s.pending[s.next_candidate++];
      if (!shard.policy.IsLinkRelevant(s.query, s.global, c.area)) continue;
      NewRequest(shard, sid, c.target, s.global, std::move(c.area), s.r - 1);
      return;  // wait for the response (or the retry budget)
    }
    FinishSession(shard, sid);
  }

  template <typename Policy>
  void OnChildResponse(Shard<Policy>& shard, int sid,
                       std::vector<typename Policy::LocalState> bundle) {
    NetSession<Policy>& s = shard.sessions[sid];
    if (s.fast) {
      for (auto& st : bundle) s.bundle.push_back(std::move(st));
      if (--s.outstanding_children == 0) FinishSession(shard, sid);
    } else {
      shard.policy.MergeLocalStates(s.query, &s.local, bundle);
      s.global = shard.policy.ComputeGlobalState(s.query, s.incoming, s.local);
      AdvanceSlow(shard, sid);
    }
  }

  template <typename Policy>
  void ChildFailed(Shard<Policy>& shard, int sid) {
    NetSession<Policy>& s = shard.sessions[sid];
    if (s.fast) {
      if (--s.outstanding_children == 0) FinishSession(shard, sid);
    } else {
      AdvanceSlow(shard, sid);
    }
  }

  /// Report upward: encode the reply datagram (the reply cache), merge
  /// the local answer into the convergecast accumulator, send.
  template <typename Policy>
  void FinishSession(Shard<Policy>& shard, int sid) {
    NetSession<Policy>& s = shard.sessions[sid];
    s.finished = true;
    open_sessions_ -= 1;
    auto local_answer = shard.policy.ComputeLocalAnswer(
        overlay_->GetPeer(s.peer).store, s.query, s.local);
    shard.policy.MergeAnswer(&s.answer_acc, std::move(local_answer), s.query);
    wire::Buffer buf;
    if (IsClientId(s.requester)) {
      // This session is the query's root: the accumulator now holds the
      // whole tree's answer. Finalize and ship it alone.
      shard.policy.FinalizeAnswer(&s.answer_acc, s.query);
      stats_.answers_finalized += 1;
      const Envelope env{s.origin_req, s.peer, s.requester,
                         MessageKind::kAnswer, 0, {}};
      shard.codec.EncodeAnswerMessage(env, s.answer_acc, &buf);
    } else {
      // Interior node: states for the parent's merge, then the partial
      // answer, all under the parent's request id in one datagram.
      const Envelope renv{s.origin_req, s.peer, s.requester,
                          MessageKind::kResponse, 0, {}};
      if (s.fast) {
        for (const auto& st : s.bundle) {
          shard.codec.EncodeResponseFrame(renv, st, &buf);
        }
      }
      shard.codec.EncodeResponseFrame(renv, s.local, &buf);
      if (shard.policy.AnswerTupleCount(s.answer_acc) > 0) {
        const Envelope aenv{s.origin_req, s.peer, s.requester,
                            MessageKind::kAnswer, 0, {}};
        shard.codec.EncodeAnswerMessage(aenv, s.answer_acc, &buf);
      }
    }
    s.reply_frame = buf.Take();
    s.bundle.clear();
    s.pending.clear();
    SendReply(shard, sid, /*retransmit=*/false);
  }

  template <typename Policy>
  void SendReply(Shard<Policy>& shard, int sid, bool retransmit) {
    NetSession<Policy>& s = shard.sessions[sid];
    const MessageKind kind = IsClientId(s.requester) ? MessageKind::kAnswer
                                                     : MessageKind::kResponse;
    const Envelope env{s.origin_req, s.peer, s.requester, kind,
                       retransmit ? 1 : 0, {}};
    if (retransmit) {
      stats_.retransmissions += 1;
      if (profiler_ != nullptr) profiler_->OnRetransmission(s.peer);
    } else {
      stats_.replies_sent += 1;
    }
    if (profiler_ != nullptr) {
      // Clients are not overlay peers: their synthetic ids must never
      // index the profiler's dense per-peer vector.
      if (IsClientId(s.requester)) {
        profiler_->OnMessageOut(s.peer, 0, s.reply_frame.size());
      } else {
        profiler_->OnMessage(s.peer, s.requester, 0, s.reply_frame.size());
      }
    }
    JournalFrame(retransmit ? obs::JournalEventKind::kRetransmit
                            : obs::JournalEventKind::kFrameSend,
                 s.peer, env, s.reply_frame.size());
    transport_->Send(env, std::vector<uint8_t>(s.reply_frame));
  }

  // --- child requests ----------------------------------------------------

  template <typename Policy>
  void NewRequest(Shard<Policy>& shard, int sid, PeerId target,
                  const typename Policy::GlobalState& state,
                  typename Overlay::Area area, int r) {
    NetSession<Policy>& s = shard.sessions[sid];
    const uint64_t id = MakeMessageId(s.peer, next_seq_++);
    Pending p;
    p.tag = PolicyTagOf<Policy>::value;
    p.session = sid;
    p.from = s.peer;
    p.target = target;
    p.timeout_ms = retry_.timeout;
    const Envelope env{id, s.peer, target, MessageKind::kQuery, 0, {}};
    wire::Buffer buf;
    const size_t start = BeginEnvelopeFrame(env, &buf);
    buf.PutU8(static_cast<uint8_t>(PolicyTagOf<Policy>::value));
    buf.PutZigzag(r);
    shard.policy.EncodeQuery(s.query, &buf);
    shard.policy.EncodeState(state, &buf);
    overlay_->EncodeArea(area, &buf);
    wire::EndFrame(&buf, start);
    p.frame = buf.Take();
    auto [it, inserted] = pending_.emplace(id, std::move(p));
    (void)inserted;
    stats_.child_requests += 1;
    inflight_requests_ += 1;
    TransmitRequest(it->first);
  }

  void TransmitRequest(uint64_t id) {
    Pending& p = pending_[id];
    const Envelope env{id, p.from, p.target, MessageKind::kQuery, p.strikes,
                       {}};
    if (profiler_ != nullptr) {
      profiler_->OnMessage(p.from, p.target, 0, p.frame.size());
      if (p.strikes > 0) profiler_->OnRetransmission(p.from);
    }
    JournalFrame(p.strikes > 0 ? obs::JournalEventKind::kRetransmit
                               : obs::JournalEventKind::kFrameSend,
                 p.from, env, p.frame.size());
    // Arm before Send: a synchronous test transport may re-enter Dispatch
    // inside Send and grow pending_, invalidating `p`. Nothing of `p` is
    // touched after the Send.
    p.timer = timers_.Arm(p.timeout_ms, [this, id] { OnRequestTimeout(id); });
    std::vector<uint8_t> copy(p.frame);
    transport_->Send(env, std::move(copy));
  }

  void OnRequestTimeout(uint64_t id) {
    auto it = pending_.find(id);
    if (it == pending_.end() || it->second.resolved) return;
    Pending& p = it->second;
    if (p.strikes >= retry_.max_retries) {
      p.resolved = true;
      inflight_requests_ -= 1;
      stats_.links_unresolved += 1;
      RIPPLE_LOG(kWarn, "net: giving up on peer %u after %d attempts",
                 p.target, p.strikes + 1);
      // Copy out before the callback chain below mutates pending_.
      const PolicyTag tag = p.tag;
      const int session = p.session;
      ResolveChildFailure(tag, session);
      return;
    }
    p.strikes += 1;
    p.timeout_ms = BackedOffWallTimeout(p.timeout_ms);
    stats_.retransmissions += 1;
    TransmitRequest(id);
  }

  double BackedOffWallTimeout(double current) const {
    return std::min(current * retry_.backoff, retry_.timeout_cap);
  }

  void ResolveChildFailure(PolicyTag tag, int session) {
    switch (tag) {
      case PolicyTag::kTopK: ChildFailed(topk_, session); break;
      case PolicyTag::kSkyline: ChildFailed(skyline_, session); break;
      case PolicyTag::kSkyband: ChildFailed(skyband_, session); break;
      case PolicyTag::kRange: ChildFailed(range_, session); break;
    }
  }

  // --- incoming responses / acks ------------------------------------------

  void HandleResponse(const Datagram& d) {
    auto it = pending_.find(d.env.id);
    if (it == pending_.end() || it->second.resolved) {
      stats_.late_responses += 1;
      return;
    }
    switch (it->second.tag) {
      case PolicyTag::kTopK: ConsumeResponse(topk_, it->second, d); break;
      case PolicyTag::kSkyline: ConsumeResponse(skyline_, it->second, d); break;
      case PolicyTag::kSkyband: ConsumeResponse(skyband_, it->second, d); break;
      case PolicyTag::kRange: ConsumeResponse(range_, it->second, d); break;
    }
  }

  /// Walks a reply datagram's back-to-back frames: state frames for the
  /// requester's merge, then at most one answer frame (the child subtree's
  /// partial answer). All-or-nothing: any undecodable frame drops the
  /// datagram and leaves recovery to the retransmission timer.
  template <typename Policy>
  void ConsumeResponse(Shard<Policy>& shard, Pending& p, const Datagram& d) {
    std::vector<typename Policy::LocalState> bundle;
    typename Policy::Answer partial{};
    bool has_partial = false;
    wire::Reader r(d.bytes);
    bool ok = !d.bytes.empty();
    while (ok && r.remaining() > 0) {
      wire::FrameHeader h;
      if (!wire::DecodeFrameHeader(&r, &h) || h.id != d.env.id) {
        ok = false;
        break;
      }
      const size_t frame_end = r.position() + wire::FramePayloadSize(h);
      if (h.tag == static_cast<uint8_t>(MessageKind::kResponse)) {
        typename Policy::LocalState st{};
        ok = !has_partial && shard.codec.DecodeResponsePayload(&r, &st) &&
             r.ok() && r.position() == frame_end;
        if (ok) bundle.push_back(std::move(st));
      } else if (h.tag == static_cast<uint8_t>(MessageKind::kAnswer)) {
        ok = !has_partial && shard.codec.DecodeAnswerPayload(&r, &partial) &&
             r.ok() && r.position() == frame_end;
        has_partial = true;
      } else {
        ok = false;
      }
    }
    if (!ok || bundle.empty()) {
      stats_.frames_rejected += 1;
      return;
    }
    JournalFrame(obs::JournalEventKind::kFrameRecv, p.from, d.env,
                 d.bytes.size());
    p.resolved = true;
    inflight_requests_ -= 1;
    timers_.Cancel(p.timer);
    NetSession<Policy>& s = shard.sessions[p.session];
    if (has_partial) {
      shard.policy.MergeAnswer(&s.answer_acc, std::move(partial), s.query);
    }
    OnChildResponse(shard, p.session, std::move(bundle));
  }

  void HandleAck(const Datagram& d) {
    auto it = pending_.find(d.env.id);
    if (it == pending_.end() || it->second.resolved) return;
    JournalFrame(obs::JournalEventKind::kFrameRecv, it->second.from, d.env,
                 d.bytes.size());
    it->second.strikes = 0;
  }

  const Overlay* overlay_;
  Transport* transport_;
  RetryOptions retry_;
  DedupWindow dedup_;
  std::unordered_set<PeerId> local_peers_;
  Clock::time_point start_;
  obs::JournalSet* journal_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  obs::Registry* registry_ = nullptr;
  std::function<TransportCounters()> transport_counters_;
  WallTimers timers_;
  DaemonStats stats_;
  uint64_t open_sessions_ = 0;
  uint64_t inflight_requests_ = 0;
  uint32_t next_seq_ = 1;
  std::unordered_map<uint64_t, Pending> pending_;
  Shard<TopKPolicy> topk_;
  Shard<SkylinePolicy> skyline_;
  Shard<SkybandPolicy> skyband_;
  Shard<RangePolicy> range_;
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_DAEMON_H_
