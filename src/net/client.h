#ifndef RIPPLE_NET_CLIENT_H_
#define RIPPLE_NET_CLIENT_H_

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <utility>
#include <vector>

#include "net/envelope.h"
#include "net/fault.h"
#include "net/peers.h"
#include "net/protocol.h"
#include "net/transport.h"
#include "ripple/wire_codec.h"

namespace ripple::net {

/// What one live query returned. `complete` means a finalized answer
/// arrived within the retry budget; the answer is then canonical
/// (FinalizeAnswer ran at the serving peer AND here — it is idempotent —
/// so its bytes compare directly against a simulator run of the same
/// query).
template <typename Policy>
struct LiveOutcome {
  bool complete = false;
  typename Policy::Answer answer{};
  int attempts = 0;        // query transmissions
  double latency_ms = 0;   // send of first attempt → answer decode
  uint64_t answer_bytes = 0;
};

/// The client side of the live-overlay protocol: issues one query at a
/// time to a serving peer, retransmits with capped backoff until the
/// finalized answer arrives (the daemon acks while working and replays
/// its cached answer for duplicates), finalizes client-side and reports
/// the outcome. Queries are sequential by design — net-bench measures
/// end-to-end latency, and the retry discipline is per-request.
///
/// The client never joins the overlay; it holds a read-only replica
/// (rebuilt from the peers-file config) so callers can run the seeded
/// drivers' analytic bootstrap — routing and seed-state folding — before
/// choosing the serving peer, exactly as the simulator's drivers do.
template <typename Overlay>
class NetClient {
 public:
  /// `client_id` must carry kClientIdBase (daemons learn the return
  /// address of such senders from the datagram source). `retry` is in
  /// milliseconds.
  NetClient(const Overlay* overlay, Transport* transport, PeerId client_id,
            RetryOptions retry = {})
      : overlay_(overlay), transport_(transport), client_id_(client_id),
        retry_(retry) {}

  /// Sends `query` (with `r` ripple steps and `initial_state` — the
  /// seeded drivers' bootstrap seed, or a default-constructed state) to
  /// `target` and waits for the answer, covering the whole domain.
  template <typename Policy>
  LiveOutcome<Policy> Execute(const Policy& policy,
                              const typename Policy::Query& query,
                              PeerId target, int64_t r,
                              const typename Policy::GlobalState&
                                  initial_state) {
    using Clock = std::chrono::steady_clock;
    WireCodec<Overlay, Policy> codec(overlay_, &policy);
    const uint64_t id = MakeMessageId(client_id_, next_seq_++);
    const Envelope env{id, client_id_, target, MessageKind::kQuery, 0, {}};
    wire::Buffer buf;
    const size_t start = BeginEnvelopeFrame(env, &buf);
    buf.PutU8(static_cast<uint8_t>(PolicyTagOf<Policy>::value));
    buf.PutZigzag(r);
    policy.EncodeQuery(query, &buf);
    policy.EncodeState(initial_state, &buf);
    overlay_->EncodeArea(overlay_->FullArea(), &buf);
    wire::EndFrame(&buf, start);
    const std::vector<uint8_t> frame = buf.Take();

    LiveOutcome<Policy> out;
    const auto t0 = Clock::now();
    double patience_ms = retry_.timeout;
    int strikes = 0;
    transport_->Send(env, std::vector<uint8_t>(frame));
    out.attempts = 1;
    auto deadline = Clock::now() +
                    std::chrono::duration<double, std::milli>(patience_ms);
    for (;;) {
      const auto now = Clock::now();
      int wait_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
              .count());
      if (wait_ms < 0) wait_ms = 0;
      Datagram d;
      if (transport_->Poll(&d, wait_ms)) {
        if (d.env.id != id) continue;  // stale datagram of an earlier query
        if (d.env.kind == MessageKind::kAck) {
          // The serving peer is alive and working: restore patience.
          strikes = 0;
          deadline = Clock::now() +
                     std::chrono::duration<double, std::milli>(patience_ms);
          continue;
        }
        if (d.env.kind != MessageKind::kAnswer) continue;
        wire::Reader reader(d.bytes);
        Envelope got;
        typename Policy::Answer answer{};
        if (!DecodeEnvelopeFrame(&reader, &got) ||
            !codec.DecodeAnswerPayload(&reader, &answer) || !reader.ok() ||
            reader.remaining() != 0) {
          continue;  // undecodable: keep waiting, retransmission recovers
        }
        policy.FinalizeAnswer(&answer, query);
        out.answer = std::move(answer);
        out.answer_bytes = d.bytes.size();
        out.complete = true;
        out.latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        return out;
      }
      // Patience spent: retransmit the byte-identical frame, or give up.
      if (strikes >= retry_.max_retries) {
        out.latency_ms =
            std::chrono::duration<double, std::milli>(Clock::now() - t0)
                .count();
        return out;  // incomplete
      }
      strikes += 1;
      patience_ms = std::min(patience_ms * retry_.backoff, retry_.timeout_cap);
      transport_->Send(env, std::vector<uint8_t>(frame));
      out.attempts += 1;
      deadline = Clock::now() +
                 std::chrono::duration<double, std::milli>(patience_ms);
    }
  }

  const Overlay& overlay() const { return *overlay_; }
  PeerId client_id() const { return client_id_; }

 private:
  const Overlay* overlay_;
  Transport* transport_;
  PeerId client_id_;
  RetryOptions retry_;
  uint32_t next_seq_ = 1;
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_CLIENT_H_
