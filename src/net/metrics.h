#ifndef RIPPLE_NET_METRICS_H_
#define RIPPLE_NET_METRICS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace ripple {

/// Cost of one distributed query execution.
///
/// * latency_hops — number of sequential forwarding hops on the critical
///   path, accounted exactly as in the paper's Lemmas 1–3 (`fast` combines
///   children with 1+max, `slow` with sum).
/// * peers_visited — peers that processed the query (the basis of the
///   paper's congestion metric).
/// * messages — query forwards + state responses + answer deliveries.
/// * tuples_shipped — tuples carried by states and answers.
/// * bytes_on_wire — serialized size of every charged message's wire
///   frame (docs/WIRE.md); the measured counterpart of tuples_shipped.
struct QueryStats {
  uint64_t latency_hops = 0;
  uint64_t peers_visited = 0;
  uint64_t messages = 0;
  uint64_t tuples_shipped = 0;
  uint64_t bytes_on_wire = 0;

  QueryStats& operator+=(const QueryStats& o) {
    latency_hops += o.latency_hops;
    peers_visited += o.peers_visited;
    messages += o.messages;
    tuples_shipped += o.tuples_shipped;
    bytes_on_wire += o.bytes_on_wire;
    return *this;
  }

  std::string ToString() const;
};

/// Accumulates per-query stats over a batch and reports the averages the
/// paper plots. Congestion is defined in Section 7.1 as the average number
/// of queries processed at any peer when n queries are issued (n = network
/// size); that equals the mean number of peers visited per query, which is
/// what we report (independent of how many queries are actually run).
class StatsAccumulator {
 public:
  void Add(const QueryStats& s) {
    batch_.push_back(s);
    total_ += s;
  }

  size_t count() const { return batch_.size(); }
  const QueryStats& total() const { return total_; }

  double MeanLatency() const { return Mean(&QueryStats::latency_hops); }
  double MeanCongestion() const { return Mean(&QueryStats::peers_visited); }
  double MeanMessages() const { return Mean(&QueryStats::messages); }
  double MeanTuplesShipped() const { return Mean(&QueryStats::tuples_shipped); }
  double MeanBytesOnWire() const { return Mean(&QueryStats::bytes_on_wire); }

  uint64_t MaxLatency() const { return Max(&QueryStats::latency_hops); }

  /// p in [0,100]; nearest-rank percentile of latency (empty batch -> 0,
  /// p = 0 -> minimum, p = 100 -> maximum; implemented by
  /// obs::NearestRankPercentile so all percentile logic lives in one
  /// place).
  uint64_t LatencyPercentile(double p) const;

  /// Nearest-rank percentile of any stat field, e.g.
  /// `acc.Percentile(&QueryStats::peers_visited, 99)`.
  uint64_t Percentile(uint64_t QueryStats::* field, double p) const;

 private:
  double Mean(uint64_t QueryStats::* field) const {
    if (batch_.empty()) return 0.0;
    return static_cast<double>(total_.*field) /
           static_cast<double>(batch_.size());
  }
  uint64_t Max(uint64_t QueryStats::* field) const {
    uint64_t m = 0;
    for (const auto& s : batch_) m = std::max(m, s.*field);
    return m;
  }

  std::vector<QueryStats> batch_;
  QueryStats total_;
};

}  // namespace ripple

#endif  // RIPPLE_NET_METRICS_H_
