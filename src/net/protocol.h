#ifndef RIPPLE_NET_PROTOCOL_H_
#define RIPPLE_NET_PROTOCOL_H_

#include <cstdint>

#include "net/envelope.h"
#include "net/peers.h"
#include "queries/range.h"
#include "queries/skyband.h"
#include "queries/skyline.h"
#include "queries/topk.h"

namespace ripple::net {

/// The live overlay serves all four rank-query policies through one
/// socket, so live query frames carry one extra byte the simulator never
/// needs: a policy tag right after the frame header, before the codec's
/// [zigzag r][query][state][area] payload. Response/answer/ack frames
/// are untagged — their message id resolves the policy through the
/// sender's pending-request table.
enum class PolicyTag : uint8_t {
  kTopK = 0,
  kSkyline = 1,
  kSkyband = 2,
  kRange = 3,
};

inline const char* PolicyTagName(PolicyTag t) {
  switch (t) {
    case PolicyTag::kTopK: return "topk";
    case PolicyTag::kSkyline: return "skyline";
    case PolicyTag::kSkyband: return "skyband";
    case PolicyTag::kRange: return "range";
  }
  return "?";
}

inline bool ValidPolicyTag(uint8_t raw) {
  return raw <= static_cast<uint8_t>(PolicyTag::kRange);
}

template <typename Policy>
struct PolicyTagOf;
template <>
struct PolicyTagOf<TopKPolicy> {
  static constexpr PolicyTag value = PolicyTag::kTopK;
};
template <>
struct PolicyTagOf<SkylinePolicy> {
  static constexpr PolicyTag value = PolicyTag::kSkyline;
};
template <>
struct PolicyTagOf<SkybandPolicy> {
  static constexpr PolicyTag value = PolicyTag::kSkyband;
};
template <>
struct PolicyTagOf<RangePolicy> {
  static constexpr PolicyTag value = PolicyTag::kRange;
};

/// Message ids must be unique across every process of the overlay for
/// receiver-side dedup and reply caching to stay sound, so each sender
/// namespaces its sequence numbers under its own id: peers under their
/// overlay id, clients under their kClientIdBase-tagged id. No two
/// senders share an id, so no coordination is needed.
inline uint64_t MakeMessageId(PeerId sender, uint32_t seq) {
  return (static_cast<uint64_t>(sender) << 32) | seq;
}

}  // namespace ripple::net

#endif  // RIPPLE_NET_PROTOCOL_H_
