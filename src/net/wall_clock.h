#ifndef RIPPLE_NET_WALL_CLOCK_H_
#define RIPPLE_NET_WALL_CLOCK_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ripple::net {

/// Wall-clock analogue of sim::TimerWheel: retransmission timers for the
/// live overlay, driven by std::chrono::steady_clock instead of the
/// discrete-event queue. Same lazy-cancellation discipline — Cancel marks
/// the handle dead and the heap entry is skipped when it surfaces — so
/// daemon code reads like the engine's.
///
/// Single-threaded by design: each daemon owns one WallTimers and pumps
/// it from its serve loop (RunDue between Polls); NextDelayMs bounds the
/// Poll timeout so a due timer never waits behind an idle socket.
class WallTimers {
 public:
  using Clock = std::chrono::steady_clock;

  /// Arms a timer firing `delay_ms` from now; returns its handle.
  uint64_t Arm(double delay_ms, std::function<void()> fn) {
    const uint64_t id = next_id_++;
    const auto due =
        Clock::now() + std::chrono::microseconds(
                           static_cast<int64_t>(delay_ms * 1000.0));
    live_.emplace(id, std::move(fn));
    heap_.push(Entry{due, id});
    return id;
  }

  /// Cancels a handle; firing and double-cancel are both safe no-ops.
  void Cancel(uint64_t id) { live_.erase(id); }

  /// Milliseconds until the earliest live timer is due (0 when overdue),
  /// or -1 when nothing is armed. Pops dead heads as a side effect.
  int NextDelayMs() {
    SkipDead();
    if (heap_.empty()) return -1;
    const auto now = Clock::now();
    if (heap_.top().due <= now) return 0;
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
        heap_.top().due - now);
    return static_cast<int>(us.count() / 1000) + 1;  // round up
  }

  /// Fires every timer due by now, in due order. Callbacks may arm or
  /// cancel further timers.
  void RunDue() {
    const auto now = Clock::now();
    for (;;) {
      SkipDead();
      if (heap_.empty() || heap_.top().due > now) return;
      const uint64_t id = heap_.top().id;
      heap_.pop();
      auto it = live_.find(id);
      if (it == live_.end()) continue;
      auto fn = std::move(it->second);
      live_.erase(it);
      fn();
    }
  }

  size_t pending() const { return live_.size(); }

 private:
  struct Entry {
    Clock::time_point due;
    uint64_t id;
    bool operator>(const Entry& o) const { return due > o.due; }
  };

  void SkipDead() {
    while (!heap_.empty() && live_.find(heap_.top().id) == live_.end()) {
      heap_.pop();
    }
  }

  uint64_t next_id_ = 1;
  std::unordered_map<uint64_t, std::function<void()>> live_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_WALL_CLOCK_H_
