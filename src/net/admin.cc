#include "net/admin.h"

#include <cstdio>
#include <utility>
#include <vector>

#include "common/json.h"

namespace ripple::net {
namespace {

// Shared shape of the three counter structs: varint field count, then
// the fields in ForEach order. `visit(s, fn)` adapts the per-struct
// ForEach*Field visitor.

template <typename S, typename Visit>
void EncodeCounterStruct(const S& s, Visit visit, wire::Buffer* buf) {
  uint64_t n = 0;
  visit(s, [&](const char*, const uint64_t&) { n += 1; });
  buf->PutVarint(n);
  visit(s, [&](const char*, const uint64_t& v) { buf->PutVarint(v); });
}

template <typename S, typename Visit>
bool DecodeCounterStruct(wire::Reader* r, S* s, Visit visit) {
  uint64_t expect = 0;
  visit(*s, [&](const char*, uint64_t&) { expect += 1; });
  if (r->Varint() != expect) r->Fail();
  visit(*s, [&](const char*, uint64_t& v) { v = r->Varint(); });
  return r->ok();
}

template <typename S, typename Visit>
std::string CounterStructJson(const S& s, Visit visit) {
  std::string out = "{";
  bool first = true;
  visit(s, [&](const char* name, const uint64_t& v) {
    if (!first) out += ",";
    first = false;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\":%llu", name,
                  static_cast<unsigned long long>(v));
    out += buf;
  });
  out += "}";
  return out;
}

void PutString(wire::Buffer* buf, const std::string& s) {
  buf->PutVarint(s.size());
  buf->PutBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size());
}

bool GetString(wire::Reader* r, std::string* out) {
  const uint64_t n = r->Varint();
  if (!r->ok() || n > r->remaining()) {
    r->Fail();
    return false;
  }
  out->assign(reinterpret_cast<const char*>(r->cursor()),
              static_cast<size_t>(n));
  r->Skip(static_cast<size_t>(n));
  return true;
}

const auto kStatFields = [](auto&& s, auto&& fn) {
  ForEachDaemonStatField(s, fn);
};
const auto kTransportFields = [](auto&& s, auto&& fn) {
  ForEachTransportCounterField(s, fn);
};
const auto kDepthFields = [](auto&& s, auto&& fn) {
  ForEachQueueDepthField(s, fn);
};

}  // namespace

void EncodeDaemonStats(const DaemonStats& s, wire::Buffer* buf) {
  EncodeCounterStruct(s, kStatFields, buf);
}
bool DecodeDaemonStats(wire::Reader* r, DaemonStats* s) {
  return DecodeCounterStruct(r, s, kStatFields);
}
void EncodeTransportCounters(const TransportCounters& t, wire::Buffer* buf) {
  EncodeCounterStruct(t, kTransportFields, buf);
}
bool DecodeTransportCounters(wire::Reader* r, TransportCounters* t) {
  return DecodeCounterStruct(r, t, kTransportFields);
}
void EncodeQueueDepths(const QueueDepths& q, wire::Buffer* buf) {
  EncodeCounterStruct(q, kDepthFields, buf);
}
bool DecodeQueueDepths(wire::Reader* r, QueueDepths* q) {
  return DecodeCounterStruct(r, q, kDepthFields);
}

void EncodeAdminPong(const AdminPong& p, wire::Buffer* buf) {
  buf->PutVarint(p.uptime_ms);
  buf->PutVarint(p.peers_served);
}

bool DecodeAdminPong(wire::Reader* r, AdminPong* p) {
  p->uptime_ms = r->Varint();
  p->peers_served = r->Varint();
  return r->ok();
}

void EncodeStatsReport(const AdminStatsReport& s, wire::Buffer* buf) {
  buf->PutVarint(s.uptime_ms);
  buf->PutVarint(s.peer_lo);
  buf->PutVarint(s.peer_hi);
  EncodeDaemonStats(s.stats, buf);
  EncodeTransportCounters(s.transport, buf);
  EncodeQueueDepths(s.queues, buf);
}

bool DecodeStatsReport(wire::Reader* r, AdminStatsReport* s) {
  s->uptime_ms = r->Varint();
  s->peer_lo = static_cast<uint32_t>(r->Varint());
  s->peer_hi = static_cast<uint32_t>(r->Varint());
  return DecodeDaemonStats(r, &s->stats) &&
         DecodeTransportCounters(r, &s->transport) &&
         DecodeQueueDepths(r, &s->queues) && r->ok();
}

void EncodeHealthReport(const AdminHealthReport& h, wire::Buffer* buf) {
  buf->PutU8(h.healthy ? 1 : 0);
  buf->PutVarint(h.uptime_ms);
  buf->PutVarint(h.open_sessions);
  buf->PutVarint(h.pending_requests);
  buf->PutVarint(h.queries_served);
}

bool DecodeHealthReport(wire::Reader* r, AdminHealthReport* h) {
  const uint8_t healthy = r->U8();
  if (healthy > 1) r->Fail();
  h->healthy = healthy == 1;
  h->uptime_ms = r->Varint();
  h->open_sessions = r->Varint();
  h->pending_requests = r->Varint();
  h->queries_served = r->Varint();
  return r->ok();
}

void EncodeSnapshot(const obs::Snapshot& s, wire::Buffer* buf) {
  buf->PutF64(s.at_ms);
  buf->PutVarint(s.counters.size());
  for (const auto& [name, value] : s.counters) {
    PutString(buf, name);
    buf->PutVarint(value);
  }
  buf->PutVarint(s.gauges.size());
  for (const auto& [name, value] : s.gauges) {
    PutString(buf, name);
    buf->PutF64(value);
  }
}

bool DecodeSnapshot(wire::Reader* r, obs::Snapshot* s) {
  s->at_ms = r->F64();
  s->counters.clear();
  s->gauges.clear();
  uint64_t n = r->Varint();
  // Every entry needs at least 2 bytes (empty name + 1-byte varint), so a
  // count beyond remaining() is garbage — reject before reserving.
  if (!r->ok() || n > r->remaining()) {
    r->Fail();
    return false;
  }
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!GetString(r, &name)) return false;
    const uint64_t value = r->Varint();
    s->counters.emplace_back(std::move(name), value);
  }
  n = r->Varint();
  if (!r->ok() || n > r->remaining()) {
    r->Fail();
    return false;
  }
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!GetString(r, &name)) return false;
    const double value = r->F64();
    s->gauges.emplace_back(std::move(name), value);
  }
  return r->ok();
}

std::string DaemonStatsJson(const DaemonStats& s) {
  return CounterStructJson(s, kStatFields);
}
std::string TransportCountersJson(const TransportCounters& t) {
  return CounterStructJson(t, kTransportFields);
}
std::string QueueDepthsJson(const QueueDepths& q) {
  return CounterStructJson(q, kDepthFields);
}

std::string StatsReportJson(const AdminStatsReport& s) {
  char head[128];
  std::snprintf(head, sizeof(head),
                "{\"uptime_ms\":%llu,\"peer_lo\":%u,\"peer_hi\":%u,",
                static_cast<unsigned long long>(s.uptime_ms), s.peer_lo,
                s.peer_hi);
  std::string out = head;
  out += "\"stats\":" + DaemonStatsJson(s.stats);
  out += ",\"transport\":" + TransportCountersJson(s.transport);
  out += ",\"queues\":" + QueueDepthsJson(s.queues);
  out += "}";
  return out;
}

std::string SnapshotJson(const obs::Snapshot& s) {
  char head[64];
  std::snprintf(head, sizeof(head), "{\"at_ms\":%.3f,\"counters\":{",
                s.at_ms);
  std::string out = head;
  bool first = true;
  for (const auto& [name, value] : s.counters) {
    if (!first) out += ",";
    first = false;
    char buf[32];
    std::snprintf(buf, sizeof(buf), ":%llu",
                  static_cast<unsigned long long>(value));
    out += "\"" + JsonEscape(name) + "\"" + buf;
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : s.gauges) {
    if (!first) out += ",";
    first = false;
    char buf[40];
    std::snprintf(buf, sizeof(buf), ":%.6g", value);
    out += "\"" + JsonEscape(name) + "\"" + buf;
  }
  out += "}}";
  return out;
}

namespace {

template <typename S, typename Visit>
void AddCounterStruct(S* into, const S& s, Visit visit) {
  std::vector<uint64_t> add;
  visit(s, [&](const char*, const uint64_t& v) { add.push_back(v); });
  size_t i = 0;
  visit(*into, [&](const char*, uint64_t& v) { v += add[i++]; });
}

}  // namespace

void AddInto(DaemonStats* into, const DaemonStats& s) {
  AddCounterStruct(into, s, kStatFields);
}

void AddInto(TransportCounters* into, const TransportCounters& t) {
  AddCounterStruct(into, t, kTransportFields);
}

void AddInto(QueueDepths* into, const QueueDepths& q) {
  AddCounterStruct(into, q, kDepthFields);
}

namespace {

template <typename S, typename Visit>
void SyncCounterStruct(obs::Registry* registry, const char* prefix,
                       const S& s, Visit visit) {
  visit(s, [&](const char* name, const uint64_t& v) {
    obs::Counter& c = registry->GetCounter(std::string(prefix) + name);
    const uint64_t cur = c.value();
    if (v > cur) c.Inc(v - cur);
  });
}

}  // namespace

void StatsBridge::SyncStats(const DaemonStats& s) {
  SyncCounterStruct(registry_, "net.daemon.", s, kStatFields);
}

void StatsBridge::SyncTransport(const TransportCounters& t) {
  SyncCounterStruct(registry_, "net.udp.", t, kTransportFields);
}

void StatsBridge::SyncQueues(const QueueDepths& q, double uptime_ms) {
  ForEachQueueDepthField(q, [&](const char* name, const uint64_t& v) {
    registry_->GetGauge(std::string("net.daemon.") + name)
        .Set(static_cast<double>(v));
  });
  registry_->GetGauge("net.daemon.uptime_ms").Set(uptime_ms);
}

}  // namespace ripple::net
