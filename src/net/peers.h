#ifndef RIPPLE_NET_PEERS_H_
#define RIPPLE_NET_PEERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "overlay/types.h"

namespace ripple::net {

/// Message-id range reserved for clients (net-bench drivers and other
/// non-overlay endpoints). Overlay peers are dense array indices starting
/// at 0, so any id with the top bit set cannot be a peer: daemons treat
/// such senders as clients and learn their return address from the
/// datagram's source, while frames from unknown ids below the base are
/// dropped and counted.
inline constexpr PeerId kClientIdBase = 0x80000000u;

inline bool IsClientId(PeerId id) { return (id & kClientIdBase) != 0; }

/// A UDP endpoint as written in the peers file ("127.0.0.1:9101").
/// Resolution to sockaddr happens inside UdpSocketTransport; the parsed
/// form stays plain strings so this header needs no POSIX includes.
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  bool operator==(const Endpoint& o) const {
    return port == o.port && host == o.host;
  }
  std::string ToString() const;
};

/// Parses "host:port". Fails on a missing colon or an unparsable port.
Result<Endpoint> ParseEndpoint(const std::string& text);

/// The deterministic overlay recipe shared by every process: each daemon
/// (and every client replica) rebuilds the exact same MIDAS overlay from
/// these fields, so the peers file is the only state that must be
/// distributed out of band. The recipe matches `ripple_cli run`:
/// Rng(seed * 7919) drives data generation, `seed` drives the overlay.
struct NetConfig {
  std::string dataset = "uniform";
  uint64_t peers = 12;
  int64_t dims = 2;
  uint64_t tuples = 1000;
  uint64_t seed = 1;
  bool patterns = false;
};

/// One `peer` line: peers [lo, hi] are served by the process at
/// `endpoint`.
struct PeerAssignment {
  PeerId lo = 0;
  PeerId hi = 0;
  Endpoint endpoint;
};

/// A parsed peers file: the shared overlay recipe plus the peer-id →
/// endpoint table. Format (one directive per line, `#` comments):
///
///   config dataset=uniform peers=12 dims=2 tuples=1000 seed=7 patterns=0
///   peer 0-3 127.0.0.1:9101
///   peer 4-7 127.0.0.1:9102
///   peer 8-11 127.0.0.1:9103
///
/// Every peer id in [0, config.peers) must be covered by exactly one
/// assignment.
struct PeersFile {
  NetConfig config;
  std::vector<PeerAssignment> assignments;

  /// Endpoint serving `id`, or nullptr for ids outside every assignment
  /// (clients resolve through learned addresses instead).
  const Endpoint* Find(PeerId id) const;

  /// Peer ids assigned to `endpoint`, in ascending order.
  std::vector<PeerId> PeersAt(const Endpoint& endpoint) const;

  /// The distinct process endpoints, in file order.
  std::vector<Endpoint> Processes() const;

  /// Round-trips back to the file format (canonical form, no comments).
  std::string Format() const;
};

Result<PeersFile> ParsePeersFile(const std::string& text);
Result<PeersFile> LoadPeersFile(const std::string& path);

}  // namespace ripple::net

#endif  // RIPPLE_NET_PEERS_H_
