#ifndef RIPPLE_NET_ADMIN_H_
#define RIPPLE_NET_ADMIN_H_

#include <cstdint>
#include <string>

#include "obs/metrics.h"
#include "obs/snapshot.h"
#include "wire/buffer.h"

namespace ripple::net {

/// The admin plane: monitoring messages a daemon answers out of its serve
/// loop (MessageKind tags 4-7, docs/NET.md). Requests carry an empty
/// payload; replies reuse the request's tag and message id and carry one
/// of the report payloads below. Every report struct has a ForEach*Field
/// visitor so the wire codec, the JSON export, the registry bridge and
/// the monitor's cluster aggregation all iterate the exact same field
/// list in the exact same order — adding a counter in one place adds it
/// everywhere, and the field names match across wire, JSON and metrics.

/// Counters a daemon accumulates over its lifetime; dumped on shutdown
/// and scraped live via kAdminStats. Transport-level drops
/// (malformed/oversize/unknown sender) live on the UdpSocketTransport
/// (TransportCounters below); these cover the protocol layer above it.
struct DaemonStats {
  uint64_t queries_served = 0;      // sessions opened
  uint64_t replies_sent = 0;        // reply datagrams (first transmission)
  uint64_t answers_finalized = 0;   // client-facing answers produced
  uint64_t child_requests = 0;      // query forwards issued
  uint64_t retransmissions = 0;     // re-sent query forwards + replies
  uint64_t acks_sent = 0;
  uint64_t duplicates_suppressed = 0;  // dedup hits on incoming queries
  uint64_t late_responses = 0;      // responses after give-up / dup responses
  uint64_t links_unresolved = 0;    // child subtrees abandoned
  uint64_t frames_rejected = 0;     // well-framed but undecodable payloads
  uint64_t misdelivered = 0;        // frames for peers this process lacks
  uint64_t admin_requests = 0;      // admin probes answered (observer plane;
                                    // scraping a daemon perturbs only this)
};

/// `S` is `DaemonStats&` or `const DaemonStats&`; `fn(name, field)`.
template <typename S, typename Fn>
void ForEachDaemonStatField(S&& s, Fn&& fn) {
  fn("queries_served", s.queries_served);
  fn("replies_sent", s.replies_sent);
  fn("answers_finalized", s.answers_finalized);
  fn("child_requests", s.child_requests);
  fn("retransmissions", s.retransmissions);
  fn("acks_sent", s.acks_sent);
  fn("duplicates_suppressed", s.duplicates_suppressed);
  fn("late_responses", s.late_responses);
  fn("links_unresolved", s.links_unresolved);
  fn("frames_rejected", s.frames_rejected);
  fn("misdelivered", s.misdelivered);
  fn("admin_requests", s.admin_requests);
}

/// Point-in-time copy of UdpSocketTransport's datagram counters (field
/// order mirrors the transport's declaration). A daemon snapshots these
/// through a pull hook so admin replies and the registry bridge see live
/// values without net/ depending on the concrete transport.
struct TransportCounters {
  uint64_t datagrams_sent = 0;
  uint64_t datagrams_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t send_failures = 0;
  uint64_t oversize_dropped = 0;
  uint64_t malformed_dropped = 0;
  uint64_t unknown_peer_dropped = 0;
};

template <typename S, typename Fn>
void ForEachTransportCounterField(S&& s, Fn&& fn) {
  fn("datagrams_sent", s.datagrams_sent);
  fn("datagrams_received", s.datagrams_received);
  fn("bytes_sent", s.bytes_sent);
  fn("bytes_received", s.bytes_received);
  fn("send_failures", s.send_failures);
  fn("oversize_dropped", s.oversize_dropped);
  fn("malformed_dropped", s.malformed_dropped);
  fn("unknown_peer_dropped", s.unknown_peer_dropped);
}

/// Instantaneous queue/wheel depths — the "how loaded is it right now"
/// half of a stats reply (DaemonStats is the monotone half).
struct QueueDepths {
  uint64_t open_sessions = 0;     // sessions started but not finished
  uint64_t sessions_total = 0;    // sessions ever opened (reply cache size)
  uint64_t pending_requests = 0;  // child forwards awaiting a response
  uint64_t timers_pending = 0;    // armed retransmission timers
  uint64_t dedup_tracked = 0;     // message ids in the dedup window
};

template <typename S, typename Fn>
void ForEachQueueDepthField(S&& s, Fn&& fn) {
  fn("open_sessions", s.open_sessions);
  fn("sessions_total", s.sessions_total);
  fn("pending_requests", s.pending_requests);
  fn("timers_pending", s.timers_pending);
  fn("dedup_tracked", s.dedup_tracked);
}

/// kAdminPing reply: proof of life plus enough identity to label it.
struct AdminPong {
  uint64_t uptime_ms = 0;
  uint64_t peers_served = 0;
};

/// kAdminStats reply: the full counter scrape.
struct AdminStatsReport {
  uint64_t uptime_ms = 0;
  uint32_t peer_lo = 0;  // lowest / highest overlay id this daemon serves
  uint32_t peer_hi = 0;
  DaemonStats stats;
  TransportCounters transport;
  QueueDepths queues;
};

/// kAdminHealth reply: the compact verdict a probe loop wants.
struct AdminHealthReport {
  bool healthy = true;
  uint64_t uptime_ms = 0;
  uint64_t open_sessions = 0;
  uint64_t pending_requests = 0;
  uint64_t queries_served = 0;
};

// --- wire codecs (payload only; the envelope frame wraps them) -----------
// Counter structs travel as a varint field count followed by the fields
// in ForEach order; a count mismatch fails the reader, so a report from a
// daemon with a different field list is rejected, never misread.

void EncodeDaemonStats(const DaemonStats& s, wire::Buffer* buf);
bool DecodeDaemonStats(wire::Reader* r, DaemonStats* s);
void EncodeTransportCounters(const TransportCounters& t, wire::Buffer* buf);
bool DecodeTransportCounters(wire::Reader* r, TransportCounters* t);
void EncodeQueueDepths(const QueueDepths& q, wire::Buffer* buf);
bool DecodeQueueDepths(wire::Reader* r, QueueDepths* q);

void EncodeAdminPong(const AdminPong& p, wire::Buffer* buf);
bool DecodeAdminPong(wire::Reader* r, AdminPong* p);
void EncodeStatsReport(const AdminStatsReport& s, wire::Buffer* buf);
bool DecodeStatsReport(wire::Reader* r, AdminStatsReport* s);
void EncodeHealthReport(const AdminHealthReport& h, wire::Buffer* buf);
bool DecodeHealthReport(wire::Reader* r, AdminHealthReport* h);

/// kAdminSnapshot payload: one obs::Snapshot (the daemon's current
/// windowed registry capture). Names are length-prefixed strings, counter
/// values varints, gauge values bit-exact f64.
void EncodeSnapshot(const obs::Snapshot& s, wire::Buffer* buf);
bool DecodeSnapshot(wire::Reader* r, obs::Snapshot* s);

// --- JSON (object fragments; field names identical to the wire and
// registry names, so `serve --stats-out` and the monitor's series agree)

std::string DaemonStatsJson(const DaemonStats& s);
std::string TransportCountersJson(const TransportCounters& t);
std::string QueueDepthsJson(const QueueDepths& q);
std::string StatsReportJson(const AdminStatsReport& s);
std::string SnapshotJson(const obs::Snapshot& s);

// --- cluster aggregation (the monitor sums per-daemon reports) -----------

void AddInto(DaemonStats* into, const DaemonStats& s);
void AddInto(TransportCounters* into, const TransportCounters& t);
void AddInto(QueueDepths* into, const QueueDepths& q);

/// Mirrors a daemon's counters into an obs::Registry so they appear in
/// --metrics-out and windowed snapshots, not only at shutdown. Counters
/// land as `net.daemon.<field>` / `net.udp.<field>` (monotone: each sync
/// bumps the registry counter up to the daemon's current value — the
/// daemon is the only writer of these names); depths land as
/// `net.daemon.<field>` gauges.
class StatsBridge {
 public:
  explicit StatsBridge(obs::Registry* registry) : registry_(registry) {}

  void SyncStats(const DaemonStats& s);
  void SyncTransport(const TransportCounters& t);
  void SyncQueues(const QueueDepths& q, double uptime_ms);

 private:
  obs::Registry* registry_;
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_ADMIN_H_
