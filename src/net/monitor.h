#ifndef RIPPLE_NET_MONITOR_H_
#define RIPPLE_NET_MONITOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/admin.h"
#include "net/peers.h"
#include "net/transport.h"
#include "obs/profile.h"

namespace ripple::net {

/// Knobs for one scrape pass. A probe is one admin request awaiting its
/// reply; `probe_timeout_ms` bounds each wait and `probe_attempts` fresh
/// requests are sent before an endpoint is marked unhealthy — the admin
/// plane rides the same lossy UDP as the query protocol, so one silent
/// probe is not a verdict.
struct MonitorOptions {
  int probe_timeout_ms = 250;
  int probe_attempts = 2;
};

/// One endpoint's scrape outcome. When `healthy` is false the report
/// fields keep their defaults (all zero) and the totals treat the daemon
/// as absent — a dead daemon contributes silence, not stale numbers.
struct EndpointStatus {
  Endpoint endpoint;
  PeerId probe_peer = kInvalidPeer;  // addressed peer (first assigned id)
  bool healthy = false;
  double rtt_ms = 0.0;  // ping round trip
  AdminPong pong;
  AdminStatsReport report;
  obs::Snapshot snapshot;
  AdminHealthReport health;
};

/// Cluster-wide aggregation of one sample: counter sums over the healthy
/// endpoints, a windowed QPS from the previous sample's queries_served,
/// and load skew (Gini / peak-to-mean via obs::ComputeSkew) over the
/// per-endpoint queries_served distribution.
struct ClusterTotals {
  uint64_t endpoints = 0;
  uint64_t healthy = 0;
  DaemonStats stats;
  TransportCounters transport;
  QueueDepths queues;
  double qps = 0.0;
  obs::SkewStats load_skew;
};

struct ClusterSample {
  double at_ms = 0.0;
  std::vector<EndpointStatus> endpoints;
  ClusterTotals totals;
};

/// Scrapes every process of a peers file over the admin protocol. Owns
/// nothing but a borrowed Transport (UDP in production, anything in
/// tests) and a client id the daemons learn a return address for —
/// exactly the NetClient arrangement, one protocol up.
///
/// Single-threaded like every Transport owner: one thread calls Scrape /
/// WaitHealthy and nothing else touches the transport meanwhile.
class ClusterMonitor {
 public:
  ClusterMonitor(const PeersFile& peers, Transport* transport,
                 PeerId self, MonitorOptions opts = {});

  /// Probes every endpoint (ping, stats, snapshot, health) and
  /// aggregates. `at_ms` stamps the sample (caller's clock — wall ms
  /// since its series began); QPS windows against the previous Scrape.
  ClusterSample Scrape(double at_ms);

  /// Pings every endpoint until all have answered at least once or
  /// `deadline_ms` of wall time elapses. The readiness probe a
  /// deployment script wants in place of log polling: returns true only
  /// when the whole cluster is reachable.
  bool WaitHealthy(int deadline_ms);

  /// Multi-line ASCII table of one sample (one row per endpoint plus a
  /// totals line).
  static std::string Dashboard(const ClusterSample& sample);

  /// One JSON object (single line, for an append-only JSONL series).
  /// Field names match the admin JSON helpers, so the series totals are
  /// directly comparable to `serve --stats-out` reports.
  static std::string SampleToJson(const ClusterSample& sample);

 private:
  /// One request/reply round: sends `kind` to `target` and waits for the
  /// reply matching this probe's message id. Stale replies (from probes
  /// already given up on) are drained and ignored. Returns the reply
  /// payload bytes (envelope stripped) or false on timeout.
  bool Probe(PeerId target, MessageKind kind, std::vector<uint8_t>* payload,
             double* rtt_ms);

  PeersFile peers_;
  Transport* transport_;
  PeerId self_;
  MonitorOptions opts_;
  uint32_t next_seq_ = 1;
  bool has_prev_ = false;
  double prev_at_ms_ = 0.0;
  uint64_t prev_queries_ = 0;
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_MONITOR_H_
