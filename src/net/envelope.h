#ifndef RIPPLE_NET_ENVELOPE_H_
#define RIPPLE_NET_ENVELOPE_H_

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "overlay/types.h"
#include "wire/frame.h"

namespace ripple::net {

/// Wire-level message classes of the fault-tolerant protocol. Query,
/// response and answer exist in the fault-free protocol too; acks only
/// appear as reactions to retransmitted queries. Tags 4-7 are the admin
/// plane (docs/NET.md): requester-initiated monitoring probes a daemon
/// answers out of its serve loop. Admin requests carry an empty payload;
/// the reply reuses the request's tag and message id, so a monitor
/// correlates by id exactly like the query protocol does.
enum class MessageKind : uint8_t {
  kQuery,          // query forward (carries the global state)
  kResponse,       // state bundle back to the requester
  kAck,            // progress ack: "request received, session running"
  kAnswer,         // qualifying tuples to the initiator
  kAdminPing,      // liveness probe; reply carries uptime + peers served
  kAdminStats,     // full counter scrape (AdminStatsReport)
  kAdminSnapshot,  // current windowed metrics snapshot (obs::Snapshot)
  kAdminHealth,    // compact health verdict (AdminHealthReport)
};

inline const char* MessageKindName(MessageKind k) {
  switch (k) {
    case MessageKind::kQuery: return "query";
    case MessageKind::kResponse: return "response";
    case MessageKind::kAck: return "ack";
    case MessageKind::kAnswer: return "answer";
    case MessageKind::kAdminPing: return "admin-ping";
    case MessageKind::kAdminStats: return "admin-stats";
    case MessageKind::kAdminSnapshot: return "admin-snapshot";
    case MessageKind::kAdminHealth: return "admin-health";
  }
  return "?";
}

inline bool IsAdminKind(MessageKind k) {
  return k >= MessageKind::kAdminPing && k <= MessageKind::kAdminHealth;
}

/// Identity of one logical message. Retransmissions reuse the id (that is
/// what makes receiver-side dedup and reply caching work); `attempt` only
/// distinguishes copies for tracing. `trace` is the query's trace context
/// (stamped into the v2 frame header, so it survives a process boundary);
/// retransmissions carry the original's context.
struct Envelope {
  uint64_t id = 0;
  PeerId from = kInvalidPeer;
  PeerId to = kInvalidPeer;
  MessageKind kind = MessageKind::kQuery;
  int attempt = 0;
  wire::TraceContext trace;
};

// The frame tag byte IS the MessageKind value; keep the two in sync.
static_assert(static_cast<uint8_t>(MessageKind::kAdminHealth) ==
              wire::kMaxMessageTag);

/// Starts a wire frame carrying this envelope (id/from/to/kind become the
/// frame header; `attempt` is bookkeeping, never on the wire — a
/// retransmission is byte-identical to the original, which is what lets
/// receivers dedup by id). Returns the frame start for wire::EndFrame.
inline size_t BeginEnvelopeFrame(const Envelope& env, wire::Buffer* buf) {
  return wire::BeginFrame(buf, static_cast<uint8_t>(env.kind), env.id,
                          env.from, env.to, env.trace);
}

/// Decodes one frame header into an envelope, reporting why it failed
/// (truncation vs a semantic rejection — the split net.frames_truncated /
/// net.frames_rejected counters need the distinction). A v1 frame decodes
/// with an empty trace context.
inline wire::FrameError DecodeEnvelopeFrameEx(wire::Reader* r,
                                              Envelope* env) {
  wire::FrameHeader h;
  const wire::FrameError err = wire::DecodeFrameHeaderEx(r, &h);
  if (err != wire::FrameError::kOk) return err;
  env->id = h.id;
  env->from = h.from;
  env->to = h.to;
  env->kind = static_cast<MessageKind>(h.tag);
  env->trace = h.trace;
  return wire::FrameError::kOk;
}

/// Boolean wrapper for callers that do not need the failure reason.
inline bool DecodeEnvelopeFrame(wire::Reader* r, Envelope* env) {
  return DecodeEnvelopeFrameEx(r, env) == wire::FrameError::kOk;
}

/// A bounded map of recently seen message ids -> small payload (a session
/// index for reply caching, or just presence for answer dedup). FIFO
/// eviction once `capacity` ids are tracked — the window a peer remembers
/// duplicates within.
class DedupWindow {
 public:
  explicit DedupWindow(size_t capacity = 1024) : capacity_(capacity) {}

  /// Returns the value stored for `id`, or nullptr if unseen (or evicted).
  const int64_t* Lookup(uint64_t id) const {
    auto it = seen_.find(id);
    return it == seen_.end() ? nullptr : &it->second;
  }

  /// Records `id` (first sighting wins; re-inserting refreshes nothing).
  void Insert(uint64_t id, int64_t value) {
    if (capacity_ == 0) return;
    if (!seen_.emplace(id, value).second) return;
    order_.push_back(id);
    while (order_.size() > capacity_) {
      seen_.erase(order_.front());
      order_.pop_front();
    }
  }

  size_t size() const { return seen_.size(); }
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  std::unordered_map<uint64_t, int64_t> seen_;
  std::deque<uint64_t> order_;
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_ENVELOPE_H_
