#ifndef RIPPLE_NET_FRAME_COST_H_
#define RIPPLE_NET_FRAME_COST_H_

#include <cstddef>
#include <utility>

#include "net/envelope.h"
#include "wire/buffer.h"
#include "wire/frame.h"

namespace ripple::net {

/// Byte cost of a payload-less message (a routed forward, an ack): one
/// bare frame header on the wire.
inline constexpr size_t kBareFrameBytes = wire::kFrameHeaderSize;

/// Measures what one framed message would occupy on the wire: a frame
/// header plus whatever `encode_payload(wire::Buffer*)` appends. Used by
/// the baseline protocols (DSL, SSP, flooding) and the seeded drivers,
/// which charge bytes without shipping datagrams — the analytic
/// counterpart of the async engine's encode-then-Ship path, built on the
/// same codecs so the two accountings are comparable. Envelope ids don't
/// matter here: frame headers are fixed-width.
template <typename Fn>
size_t MeasureFrameBytes(MessageKind kind, Fn&& encode_payload) {
  wire::Buffer buf;
  const Envelope env{0, 0, 0, kind, 0};
  const size_t start = BeginEnvelopeFrame(env, &buf);
  std::forward<Fn>(encode_payload)(&buf);
  wire::EndFrame(&buf, start);
  return buf.size() - start;
}

}  // namespace ripple::net

#endif  // RIPPLE_NET_FRAME_COST_H_
