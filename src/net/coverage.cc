#include "net/coverage.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace ripple::net {

namespace {

/// Sorted-set union used for the peer lists (both sides are sorted and
/// deduplicated by construction).
std::vector<PeerId> MergePeers(const std::vector<PeerId>& a,
                               const std::vector<PeerId>& b) {
  std::vector<PeerId> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

void Append(std::string* s, const char* name, uint64_t v) {
  if (v == 0) return;
  char buf[64];
  std::snprintf(buf, sizeof(buf), " %s=%llu", name,
                static_cast<unsigned long long>(v));
  *s += buf;
}

}  // namespace

bool Coverage::quiet() const {
  return retries == 0 && timeouts == 0 && messages_lost == 0 &&
         messages_duplicated == 0 && duplicates_suppressed == 0 &&
         acks == 0 && late_responses == 0 && crash_drops == 0 &&
         links_unresolved == 0 && answers_lost == 0;
}

Coverage& Coverage::operator+=(const Coverage& o) {
  retries += o.retries;
  timeouts += o.timeouts;
  messages_lost += o.messages_lost;
  messages_duplicated += o.messages_duplicated;
  duplicates_suppressed += o.duplicates_suppressed;
  acks += o.acks;
  late_responses += o.late_responses;
  crash_drops += o.crash_drops;
  links_unresolved += o.links_unresolved;
  answers_lost += o.answers_lost;
  unreachable_peers = MergePeers(unreachable_peers, o.unreachable_peers);
  crashed_peers = MergePeers(crashed_peers, o.crashed_peers);
  return *this;
}

std::string Coverage::ToString() const {
  std::string out;
  if (complete()) {
    out = "complete";
  } else {
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "partial(links=%llu answers_lost=%llu unreachable=%zu)",
                  static_cast<unsigned long long>(links_unresolved),
                  static_cast<unsigned long long>(answers_lost),
                  unreachable_peers.size());
    out = buf;
  }
  Append(&out, "retries", retries);
  Append(&out, "timeouts", timeouts);
  Append(&out, "lost", messages_lost);
  Append(&out, "dup", messages_duplicated);
  Append(&out, "dedup", duplicates_suppressed);
  Append(&out, "acks", acks);
  Append(&out, "late", late_responses);
  Append(&out, "crash_drops", crash_drops);
  Append(&out, "crashed", crashed_peers.size());
  return out;
}

void RecordCoverageMetrics(const Coverage& c) {
  if (!obs::Registry::GlobalEnabled()) return;
  obs::Registry& reg = obs::Registry::Global();
  reg.GetCounter("net.retry.count").Inc(c.retries);
  reg.GetCounter("net.timeout.count").Inc(c.timeouts);
  reg.GetCounter("net.loss.count").Inc(c.messages_lost);
  reg.GetCounter("net.dup.injected").Inc(c.messages_duplicated);
  reg.GetCounter("net.dup.suppressed").Inc(c.duplicates_suppressed);
  reg.GetCounter("net.ack.count").Inc(c.acks);
  reg.GetCounter("net.late.responses").Inc(c.late_responses);
  reg.GetCounter("net.crash.drops").Inc(c.crash_drops);
  reg.GetCounter("net.crash.peers").Inc(c.crashed_peers.size());
  reg.GetCounter("net.link.unresolved").Inc(c.links_unresolved);
  reg.GetCounter("net.answer.lost").Inc(c.answers_lost);
  reg.GetCounter(c.complete() ? "net.query.complete"
                              : "net.query.partial")
      .Inc();
}

}  // namespace ripple::net
