#ifndef RIPPLE_NET_FAULT_H_
#define RIPPLE_NET_FAULT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "overlay/types.h"

namespace ripple::net {

/// A scheduled peer failure: `peer` stops processing and acknowledging
/// messages at simulated time `at` (messages already delivered before `at`
/// were handled normally; everything after is silently dropped).
struct CrashEvent {
  PeerId peer = kInvalidPeer;
  double at = 0.0;
};

/// What the simulated network does to messages. All randomness is drawn
/// from one seeded stream inside the FaultModel, so a (FaultOptions, seed)
/// pair reproduces the exact same fault schedule on every run.
///
/// The default options describe a perfect network: AnyFault() is false and
/// the async engine then runs the exact fault-free protocol (no timers, no
/// envelopes, identical message counts to the recursive engine).
struct FaultOptions {
  /// Probability that any single message transmission is lost.
  double loss_rate = 0.0;
  /// Probability that a delivered message arrives twice (the copy takes an
  /// independently jittered delay).
  double dup_rate = 0.0;
  /// Maximum extra delay fraction: each delivery is stretched by a factor
  /// uniform in [1, 1 + delay_jitter].
  double delay_jitter = 0.0;
  /// Probability that a peer crashes during the query; the crash time is
  /// uniform in [0, crash_window]. The initiator never crashes.
  double crash_rate = 0.0;
  /// Horizon for randomly scheduled crashes (simulated time units).
  double crash_window = 64.0;
  /// Explicitly scheduled crashes (in addition to crash_rate's draws).
  std::vector<CrashEvent> crashes;
  /// Seed of the fault stream (independent from workload seeds so the same
  /// query can be replayed under different fault schedules).
  uint64_t seed = 1;

  bool AnyFault() const {
    return loss_rate > 0 || dup_rate > 0 || delay_jitter > 0 ||
           crash_rate > 0 || !crashes.empty();
  }
};

/// Timeout/retry discipline for fault-tolerant execution. Only consulted
/// when FaultOptions::AnyFault() is true — a perfect network needs no
/// timers and keeps the exact lemma-style message accounting.
struct RetryOptions {
  /// Time a requester waits for a response (or progress ack) before it
  /// retransmits. Generous by default: slow-phase subtrees are legitimately
  /// deep, and premature retransmissions are pure overhead.
  double timeout = 32.0;
  /// Exponential backoff factor applied per consecutive retransmission.
  double backoff = 2.0;
  /// Upper bound on the backed-off timeout.
  double timeout_cap = 256.0;
  /// Consecutive unanswered retransmissions (no response, no ack) before
  /// the requester gives up on a link and degrades the result.
  int max_retries = 3;
  /// Per-peer duplicate-suppression window: how many recent message ids a
  /// peer remembers (FIFO eviction).
  size_t dedup_window = 1024;
};

}  // namespace ripple::net

#endif  // RIPPLE_NET_FAULT_H_
