#include "net/peers.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ripple::net {
namespace {

// Splits "key=value"; returns false when there is no '='.
bool SplitKeyValue(const std::string& token, std::string* key,
                   std::string* value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos) return false;
  *key = token.substr(0, eq);
  *value = token.substr(eq + 1);
  return true;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

Status ParseConfigLine(std::istringstream* in, NetConfig* config) {
  std::string token;
  while (*in >> token) {
    std::string key, value;
    if (!SplitKeyValue(token, &key, &value)) {
      return Status::InvalidArgument("config directive expects key=value, got '" +
                                     token + "'");
    }
    uint64_t num = 0;
    if (key == "dataset") {
      config->dataset = value;
    } else if (key == "peers" && ParseU64(value, &num)) {
      config->peers = num;
    } else if (key == "dims" && ParseU64(value, &num)) {
      config->dims = static_cast<int64_t>(num);
    } else if (key == "tuples" && ParseU64(value, &num)) {
      config->tuples = num;
    } else if (key == "seed" && ParseU64(value, &num)) {
      config->seed = num;
    } else if (key == "patterns" && ParseU64(value, &num)) {
      config->patterns = num != 0;
    } else {
      return Status::InvalidArgument("bad config entry '" + token + "'");
    }
  }
  return Status::OK();
}

Status ParsePeerLine(std::istringstream* in, PeerAssignment* out) {
  std::string range, addr;
  if (!(*in >> range >> addr)) {
    return Status::InvalidArgument("peer directive expects '<id|lo-hi> host:port'");
  }
  uint64_t lo = 0, hi = 0;
  const size_t dash = range.find('-');
  if (dash == std::string::npos) {
    if (!ParseU64(range, &lo)) {
      return Status::InvalidArgument("bad peer id '" + range + "'");
    }
    hi = lo;
  } else {
    if (!ParseU64(range.substr(0, dash), &lo) ||
        !ParseU64(range.substr(dash + 1), &hi) || hi < lo) {
      return Status::InvalidArgument("bad peer range '" + range + "'");
    }
  }
  auto endpoint = ParseEndpoint(addr);
  if (!endpoint.ok()) return endpoint.status();
  out->lo = static_cast<PeerId>(lo);
  out->hi = static_cast<PeerId>(hi);
  out->endpoint = *endpoint;
  return Status::OK();
}

}  // namespace

std::string Endpoint::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), ":%u", static_cast<unsigned>(port));
  return host + buf;
}

Result<Endpoint> ParseEndpoint(const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    return Status::InvalidArgument("endpoint '" + text +
                                   "' is not host:port");
  }
  uint64_t port = 0;
  if (!ParseU64(text.substr(colon + 1), &port) || port > 65535) {
    return Status::InvalidArgument("bad port in endpoint '" + text + "'");
  }
  Endpoint e;
  e.host = text.substr(0, colon);
  e.port = static_cast<uint16_t>(port);
  return e;
}

const Endpoint* PeersFile::Find(PeerId id) const {
  for (const PeerAssignment& a : assignments) {
    if (id >= a.lo && id <= a.hi) return &a.endpoint;
  }
  return nullptr;
}

std::vector<PeerId> PeersFile::PeersAt(const Endpoint& endpoint) const {
  std::vector<PeerId> out;
  for (const PeerAssignment& a : assignments) {
    if (!(a.endpoint == endpoint)) continue;
    for (PeerId id = a.lo; id <= a.hi; ++id) out.push_back(id);
  }
  return out;
}

std::vector<Endpoint> PeersFile::Processes() const {
  std::vector<Endpoint> out;
  for (const PeerAssignment& a : assignments) {
    bool seen = false;
    for (const Endpoint& e : out) seen = seen || e == a.endpoint;
    if (!seen) out.push_back(a.endpoint);
  }
  return out;
}

std::string PeersFile::Format() const {
  std::ostringstream out;
  out << "config dataset=" << config.dataset << " peers=" << config.peers
      << " dims=" << config.dims << " tuples=" << config.tuples
      << " seed=" << config.seed << " patterns=" << (config.patterns ? 1 : 0)
      << "\n";
  for (const PeerAssignment& a : assignments) {
    out << "peer " << a.lo;
    if (a.hi != a.lo) out << "-" << a.hi;
    out << " " << a.endpoint.ToString() << "\n";
  }
  return out.str();
}

Result<PeersFile> ParsePeersFile(const std::string& text) {
  PeersFile file;
  bool saw_config = false;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream in(line);
    std::string directive;
    if (!(in >> directive)) continue;  // blank / comment-only line
    Status s = Status::OK();
    if (directive == "config") {
      if (saw_config) {
        s = Status::InvalidArgument("duplicate config directive");
      } else {
        saw_config = true;
        s = ParseConfigLine(&in, &file.config);
      }
    } else if (directive == "peer") {
      PeerAssignment a;
      s = ParsePeerLine(&in, &a);
      if (s.ok()) file.assignments.push_back(a);
    } else {
      s = Status::InvalidArgument("unknown directive '" + directive + "'");
    }
    if (!s.ok()) {
      return Status::InvalidArgument("peers file line " +
                                     std::to_string(lineno) + ": " +
                                     std::string(s.message()));
    }
  }
  if (!saw_config) {
    return Status::InvalidArgument("peers file has no config directive");
  }
  // Coverage check: every peer id in [0, peers) served exactly once.
  std::vector<int> covered(file.config.peers, 0);
  for (const PeerAssignment& a : file.assignments) {
    for (uint64_t id = a.lo; id <= a.hi; ++id) {
      if (id >= file.config.peers) {
        return Status::InvalidArgument("peer id " + std::to_string(id) +
                                       " outside config peers=" +
                                       std::to_string(file.config.peers));
      }
      covered[id] += 1;
    }
  }
  for (uint64_t id = 0; id < file.config.peers; ++id) {
    if (covered[id] != 1) {
      return Status::InvalidArgument(
          "peer id " + std::to_string(id) + " assigned " +
          std::to_string(covered[id]) + " times (want exactly 1)");
    }
  }
  return file;
}

Result<PeersFile> LoadPeersFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open peers file '" + path + "'");
  std::ostringstream text;
  text << in.rdbuf();
  return ParsePeersFile(text.str());
}

}  // namespace ripple::net
