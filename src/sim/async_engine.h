#ifndef RIPPLE_SIM_ASYNC_ENGINE_H_
#define RIPPLE_SIM_ASYNC_ENGINE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/arena.h"
#include "common/check.h"
#include "common/kernel_counters.h"
#include "net/coverage.h"
#include "net/envelope.h"
#include "net/fault.h"
#include "net/metrics.h"
#include "net/traffic.h"
#include "net/transport.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "overlay/types.h"
#include "ripple/api.h"
#include "ripple/policy.h"
#include "ripple/wire_codec.h"
#include "sim/event_sim.h"
#include "sim/fault_model.h"
#include "sim/retransmit.h"
#include "sim/session.h"
#include "wire/buffer.h"
#include "wire/frame.h"

namespace ripple {

/// Per-message network delay: (from, to) -> time units. The default charges
/// one unit per hop, mirroring the hop-count analysis.
using LatencyModel = std::function<double(PeerId from, PeerId to)>;

inline LatencyModel UnitLatency() {
  return [](PeerId, PeerId) { return 1.0; };
}

/// Message-level asynchronous execution of the RIPPLE algorithms.
///
/// The recursive Engine evaluates Algorithms 1-3 as function calls with
/// analytic latency accounting; this class executes the *same* policies as
/// explicit messages through a discrete-event scheduler, the way deployed
/// peers would: query forwards, per-subtree state responses (fast-phase
/// subtrees convergecast their state bundles), and answer deliveries to
/// the initiator, each taking LatencyModel time on the wire.
///
/// Every transmission crosses a real serialization boundary: the message
/// is encoded into a framed wire datagram (ripple/wire_codec.h,
/// docs/WIRE.md) and handed to net::Transport::Send, which is
/// fire-and-forget; whatever the transport delivers back through the
/// engine's installed receiver is what gets decoded — objects never
/// cross, so policy code at a peer runs on exactly what came off the
/// wire. The default LoopbackTransport asserts each datagram is
/// well-framed and delivers it unchanged, synchronously, which keeps the
/// simulated clock exact (the receiver only schedules events, the wire
/// itself takes zero simulated time). A custom transport (SetTransport)
/// may count, corrupt or swallow datagrams — swallowing is simply never
/// delivering — and the engine arms its fault machinery so decode
/// rejections and silent losses degrade into timer-driven
/// retransmissions and coverage loss rather than hangs.
/// QueryStats::bytes_on_wire records the encoded bytes, charged at the
/// sender exactly where messages are charged.
///
/// Fault tolerance: when the request's FaultOptions describe an imperfect
/// network (AnyFault()), every transmission runs through a deterministic
/// FaultModel (loss, duplication, delay jitter, peer crashes) and the
/// protocol arms itself:
///  * every logical message carries an id; retransmissions reship the
///    byte-identical frame snapshot and receivers suppress duplicates
///    through per-peer dedup windows;
///  * requesters arm per-message timers with capped exponential backoff;
///    a finished callee answers retransmitted queries from its encoded
///    reply cache, a still-running callee sends a progress ack that
///    restores the requester's patience;
///  * after `max_retries` consecutive silent timeouts the requester gives
///    up on the link, folds in what it has, and the result is returned
///    flagged `complete = false` with a Coverage report.
/// With the default (perfect-network) options none of this machinery
/// exists at runtime and the engine keeps its cross-validation contract:
///
/// For any query, overlay and ripple parameter, the fault-free async
/// execution produces exactly the same answer, the same set of visited
/// peers, the same message count and the same bytes-on-wire as the
/// recursive engine; its completion time upper-bounds the engine's
/// forward-hop latency (responses ride the clock here, not in the
/// lemma-style accounting).
template <typename Overlay, typename Policy>
  requires QueryPolicy<Policy, typename Overlay::Area>
class AsyncEngine {
 public:
  using Area = typename Overlay::Area;
  using Query = typename Policy::Query;
  using LocalState = typename Policy::LocalState;
  using GlobalState = typename Policy::GlobalState;
  using Answer = typename Policy::Answer;
  using Request = QueryRequest<Policy>;
  using Result = QueryResult<Answer>;
  using Session = ripple::Session<Policy, Area>;

  AsyncEngine(const Overlay* overlay, Policy policy,
              LatencyModel latency = UnitLatency())
      : overlay_(overlay),
        policy_(std::move(policy)),
        latency_(std::move(latency)) {}

  /// Attaches a tracer recording one span per session, stamped with
  /// simulator time (so wire delays from the LatencyModel are visible in
  /// the trace). Same contract as Engine::SetTracer: nullptr disables,
  /// not owned, QueryStats are identical either way. Under faults, spans
  /// additionally carry per-session retry/timeout counts.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Attaches a per-peer event journal (obs/journal.h): frame sends,
  /// receives, retransmissions, network drops and crash-drops are appended
  /// to the acting peer's log — but only for head-sampled queries
  /// (request.trace_id != 0), so an unsampled workload writes nothing.
  /// When a tracer is also attached, Run() points it at the same journal,
  /// mirroring span begin/end events so the offline assembler
  /// (obs/assemble.h) can rebuild the full span tree from the journals
  /// alone. nullptr detaches; not owned.
  void SetJournal(obs::JournalSet* journal) { journal_ = journal; }
  obs::JournalSet* journal() const { return journal_; }

  /// Observer invoked for every peer that opens a session (one activation
  /// per visited peer — same contract as Engine::SetVisitObserver, so
  /// callers studying per-peer load can treat both engines uniformly).
  /// Pass nullptr to clear.
  void SetVisitObserver(std::function<void(PeerId)> observer) {
    visit_observer_ = std::move(observer);
  }

  /// Secondary slow-phase contact order on priority ties — same contract
  /// as Engine::SetLinkBias: larger bias first, never changes which links
  /// are contacted or the answer, only tie order. nullptr clears.
  void SetLinkBias(std::function<double(PeerId)> bias) {
    link_bias_ = std::move(bias);
  }

  /// Attaches a per-peer load profiler (same contract as
  /// Engine::SetProfiler: message/byte charges mirror QueryStats at the
  /// sender, so totals cross-check; here the profiler additionally sees
  /// retransmissions, acks and per-peer fan-out high-water marks from
  /// the fault machinery). nullptr disables; not owned.
  void SetProfiler(obs::Profiler* profiler) { profiler_ = profiler; }
  obs::Profiler* profiler() const { return profiler_; }

  /// Replaces the default loopback transport (nullptr restores it; not
  /// owned). A custom transport is treated as an imperfect network: the
  /// fault machinery arms even under clean FaultOptions, so a transport
  /// that corrupts or swallows datagrams degrades the result's coverage
  /// instead of hanging the simulation.
  void SetTransport(net::Transport* transport) { transport_ = transport; }
  net::Transport* transport() const {
    return transport_ != nullptr ? transport_ : &default_transport_;
  }
  /// The built-in loopback (its shipped-frame counters are handy in
  /// tests even when a custom transport is not installed).
  const net::LoopbackTransport& loopback() const { return default_transport_; }

  const Policy& policy() const { return policy_; }

  Result Run(const Request& request) const {
    // Fresh per-query scratch (kernel arena + work counters), mirroring
    // the recursive engine so both report identical kernel.* work.
    PerQueryArena().Reset();
    ResetKernelCounters();
    if (tracer_ != nullptr) {
      // Head sampling: the tracer follows the request's decision so
      // journal mirroring records exactly the sampled queries.
      tracer_->set_trace_id(request.trace_id);
      if (journal_ != nullptr) tracer_->SetJournal(journal_);
    }
    Runtime rt(this, &request);
    rt.Start();
    rt.sim.Run();
    Result result = rt.Finalize();
    obs::FlushKernelCounters();
    return result;
  }

 private:
  struct Runtime {
    Runtime(const AsyncEngine* engine, const Request* req)
        : self(engine),
          request(req),
          ft(req->fault.AnyFault() || engine->transport_ != nullptr),
          fault(req->fault, req->initiator),
          timers(&sim),
          codec(engine->overlay_, &engine->policy_) {}

    const AsyncEngine* self;
    const Request* request;
    const bool ft;  // fault machinery armed
    FaultModel fault;
    EventSimulator sim;
    TimerWheel timers;
    WireCodec<Overlay, Policy> codec;
    net::WireTraffic traffic;
    SessionTable<Policy, Area> sessions;
    std::vector<PendingRequest> requests;  // indexed by message id
    std::vector<PendingAnswer> answers;
    std::unordered_map<PeerId, net::DedupWindow> query_dedup;
    Result result;
    int answers_outstanding = 0;
    bool root_done = false;
    bool deadline_hit = false;
    double root_finish_time = 0;
    double last_answer_time = 0;

    const Policy& policy() const { return self->policy_; }
    const Overlay& overlay() const { return *self->overlay_; }
    const net::RetryOptions& retry() const { return request->retry; }
    obs::Profiler* profiler() const { return self->profiler_; }

    /// The wire trace context a peer whose live span is `span` stamps into
    /// an outgoing frame: the query's trace id, the sender's span as the
    /// receiver's parent, and the initiator's head-sampling decision.
    wire::TraceContext TraceFor(uint32_t span) const {
      wire::TraceContext t;
      t.trace_id = request->trace_id;
      t.parent_span = span;
      if (request->trace_id != 0) t.flags = wire::kFrameFlagSampled;
      return t;
    }

    /// The journal to feed, or nullptr when none is attached or the query
    /// is unsampled (head sampling gates every event).
    obs::JournalSet* journal() const {
      return request->trace_id != 0 ? self->journal_ : nullptr;
    }

    /// Appends one frame-level journal event to `peer`'s log.
    void JournalFrame(obs::JournalEventKind kind, PeerId peer,
                      const net::Envelope& env, uint64_t bytes) {
      obs::JournalSet* j = journal();
      if (j == nullptr) return;
      obs::JournalEvent e;
      e.kind = kind;
      e.peer = peer;
      e.sim_time = sim.now();
      e.trace_id = request->trace_id;
      e.msg_id = env.id;
      e.msg_kind = static_cast<uint8_t>(env.kind);
      e.parent_span = env.trace.parent_span;
      e.bytes = bytes;
      e.attempt = env.attempt;
      j->Record(e);
    }

    // --- entry / exit ----------------------------------------------------

    void Start() {
      // Every datagram the transport delivers during this run lands in
      // OnWireDeliver, which applies the simulated network (latency,
      // faults) and schedules the decode. The loopback transport calls
      // straight back from inside Send(); a corrupting/swallowing test
      // transport calls with modified bytes or not at all.
      self->transport()->SetReceiver(
          [this](const net::Envelope& env, std::vector<uint8_t> bytes) {
            OnWireDeliver(env, std::move(bytes));
          });
      if (ft && std::isfinite(request->deadline)) {
        sim.Schedule(request->deadline, [this] { OnDeadline(); });
      }
      GlobalState initial =
          request->initial_state.has_value()
              ? *request->initial_state
              : policy().InitialGlobalState(request->query);
      // The initiator's root session has no parent and no envelope; its
      // query never crossed a wire, so it copies the request's directly.
      StartSession(request->initiator, request->query, std::move(initial),
                   overlay().FullArea(), request->ripple.hops(),
                   /*parent=*/kNoSession, kNoRequest, obs::kNoSpan);
    }

    Result Finalize() {
      self->transport()->SetReceiver(nullptr);
      if (!ft && !std::isfinite(request->deadline)) {
        RIPPLE_CHECK(sessions.open() == 0 &&
                     "async run left dangling sessions");
      }
      policy().FinalizeAnswer(&result.answer, request->query);
      result.completion_time = std::max(root_finish_time, last_answer_time);
      if (deadline_hit) {
        result.completion_time = std::max(result.completion_time, sim.now());
      }
      result.complete = result.coverage.complete() && !deadline_hit;
      net::RecordCoverageMetrics(result.coverage);
      net::RecordTrafficMetrics(traffic);
      return std::move(result);
    }

    // --- wire ------------------------------------------------------------

    /// Hands one encoded datagram to the transport. Fire-and-forget: a
    /// delivering transport calls back into OnWireDeliver (the loopback
    /// does so synchronously, before this returns); a swallowing one
    /// stays silent and the sender's timers take over.
    void SendDatagram(const net::Envelope& env, std::vector<uint8_t> bytes) {
      self->transport()->Send(env, std::move(bytes));
    }

    /// The transport delivered one datagram (possibly modified in
    /// flight). This is where bytes re-enter the simulation: the message
    /// kind routes to its decode path, and the simulated network
    /// (latency model + fault draws) sits between here and the decode,
    /// exactly where the wire would be. The envelope's id recovers the
    /// sender-side bookkeeping entry — it is transport metadata, like a
    /// UDP packet's source address, not part of the authenticated frame
    /// (the decode re-reads everything from the bytes).
    void OnWireDeliver(const net::Envelope& env, std::vector<uint8_t> bytes) {
      switch (env.kind) {
        case net::MessageKind::kQuery: {
          const int64_t id = static_cast<int64_t>(env.id);
          Transmit(env, env.from, env.to,
                   [this, id, datagram = std::move(bytes)] {
                     DeliverQuery(id, datagram);
                   });
          break;
        }
        case net::MessageKind::kResponse: {
          const int64_t req_id = static_cast<int64_t>(env.id);
          Transmit(env, env.from, env.to,
                   [this, req_id, datagram = std::move(bytes)] {
                     DeliverResponse(req_id, datagram);
                   });
          break;
        }
        case net::MessageKind::kAck: {
          const int64_t id = static_cast<int64_t>(env.id);
          Transmit(env, env.from, env.to,
                   [this, id, datagram = std::move(bytes)] {
                     DeliverAck(id, datagram);
                   });
          break;
        }
        case net::MessageKind::kAnswer:
          OnAnswerWire(env, std::move(bytes));
          break;
        default:
          // Admin-plane kinds only exist on the live overlay; the
          // simulated wire never carries them.
          RIPPLE_CHECK(!net::IsAdminKind(env.kind));
          break;
      }
    }

    /// A received datagram failed to decode. Corruption can only come from
    /// a custom transport, and installing one arms `ft` — on a loopback
    /// wire a rejection means an engine bug, so fail loudly. Truncated
    /// length fields are counted apart from semantic rejections
    /// (bad version / tag / payload), so the two failure families stay
    /// distinguishable in the net.* metrics.
    void RejectFrame(wire::FrameError err) {
      if (err == wire::FrameError::kTruncated) {
        traffic.frames_truncated += 1;
      } else {
        traffic.frames_rejected += 1;
      }
      RIPPLE_CHECK(ft && "frame rejected without fault machinery armed");
    }

    /// Schedules a delivery callback at `to` after wire delay, dropping it
    /// if the receiver has crashed by then. `deliver` must be idempotent
    /// against duplicate copies (all receive paths dedup). `env` only
    /// feeds the journal's crash-drop event.
    void ScheduleDelivery(const net::Envelope& env, PeerId to, double delay,
                          std::function<void()> deliver) {
      sim.Schedule(delay, [this, env, to, deliver = std::move(deliver)] {
        if (ft && fault.CrashedAt(to, sim.now())) {
          result.coverage.crash_drops += 1;
          NoteCrashed(to);
          JournalFrame(obs::JournalEventKind::kCrash, to, env, 0);
          return;
        }
        deliver();
      });
    }

    /// One wire transmission from -> to, subject to loss / jitter /
    /// duplication. The caller has already charged the message to stats.
    void Transmit(const net::Envelope& env, PeerId from, PeerId to,
                  std::function<void()> deliver) {
      const double base = self->latency_(from, to);
      if (!ft) {
        sim.Schedule(base, std::move(deliver));
        return;
      }
      if (fault.DropMessage()) {
        result.coverage.messages_lost += 1;
        JournalFrame(obs::JournalEventKind::kDrop, from, env, 0);
        return;
      }
      const double d = fault.Jitter(base);
      if (fault.DuplicateMessage()) {
        result.coverage.messages_duplicated += 1;
        ScheduleDelivery(env, to, fault.Jitter(base), deliver);
      }
      ScheduleDelivery(env, to, d, std::move(deliver));
    }

    void NoteCrashed(PeerId peer) {
      auto& v = result.coverage.crashed_peers;
      auto it = std::lower_bound(v.begin(), v.end(), peer);
      if (it == v.end() || *it != peer) v.insert(it, peer);
    }

    void NoteUnreachable(PeerId peer) {
      auto& v = result.coverage.unreachable_peers;
      auto it = std::lower_bound(v.begin(), v.end(), peer);
      if (it == v.end() || *it != peer) v.insert(it, peer);
    }

    // --- sessions (the RIPPLE procedure itself) --------------------------

    /// Opens the per-peer procedure with the query/state/area as decoded
    /// at this peer (the caller already charged the message).
    /// `wire_parent_span` is the parent span as carried by the query
    /// frame's v2 header — trace parentage genuinely travels the wire, it
    /// is never reconstructed from in-process session links (the root
    /// session, which received no frame, passes obs::kNoSpan).
    void StartSession(PeerId peer, Query query, GlobalState state, Area area,
                      int r, int parent, int64_t origin_req,
                      uint32_t wire_parent_span) {
      const int id = sessions.Create();
      Session& s = sessions[id];
      s.peer = peer;
      s.query = std::move(query);
      s.incoming = std::move(state);
      s.area = std::move(area);
      s.r = r;
      s.parent = parent;
      s.origin_req = origin_req;
      s.fast = r <= 0;
      result.stats.peers_visited += 1;
      if (self->visit_observer_) self->visit_observer_(peer);
      if (profiler() != nullptr) profiler()->OnSpan(peer);
      if (obs::Tracer* tracer = self->tracer_) {
        s.span = tracer->StartSpan(
            peer, wire_parent_span,
            s.fast ? obs::SpanKind::kFast : obs::SpanKind::kSlow, r,
            sim.now());
        tracer->span(s.span).tuples_in =
            policy().GlobalStateTupleCount(s.incoming);
      }

      const auto& node = overlay().GetPeer(peer);
      {
        obs::ScopedTimer cpu(profiler(), peer);
        s.local = policy().ComputeLocalState(node.store, s.query, s.incoming);
        s.global = policy().ComputeGlobalState(s.query, s.incoming, s.local);
      }

      if (s.fast) {
        // Algorithm 1 / Algorithm 3 second loop: forward everywhere at
        // once with the state snapshot.
        std::vector<std::pair<PeerId, Area>> targets;
        for (const auto& link : node.links) {
          Area restricted;
          if (!Overlay::IntersectArea(link.region, s.area, &restricted)) {
            continue;
          }
          if (!policy().IsLinkRelevant(s.query, s.global, restricted)) {
            if (s.span != obs::kNoSpan) {
              self->tracer_->span(s.span).links_pruned += 1;
            }
            continue;
          }
          targets.emplace_back(link.target, std::move(restricted));
        }
        if (s.span != obs::kNoSpan) {
          self->tracer_->span(s.span).links_forwarded = targets.size();
        }
        // Fast-phase fan-out: every relevant link outstanding at once.
        if (profiler() != nullptr && !targets.empty()) {
          profiler()->OnQueueDepth(peer, targets.size());
        }
        sessions[id].outstanding_children = static_cast<int>(targets.size());
        for (auto& [target, restricted] : targets) {
          NewRequest(id, target, sessions[id].global, std::move(restricted),
                     0);
        }
        if (sessions[id].outstanding_children == 0) FinishSession(id);
      } else {
        // Algorithm 2 / Algorithm 3 first loop: prioritized, sequential.
        for (const auto& link : node.links) {
          Area restricted;
          if (!Overlay::IntersectArea(link.region, s.area, &restricted)) {
            continue;
          }
          const double priority = policy().LinkPriority(s.query, restricted);
          s.pending.push_back(typename Session::Candidate{
              link.target, std::move(restricted), priority});
        }
        const auto& bias = self->link_bias_;
        std::stable_sort(s.pending.begin(), s.pending.end(),
                         [&bias](const auto& a, const auto& b) {
                           if (a.priority != b.priority) {
                             return a.priority > b.priority;
                           }
                           if (bias) return bias(a.target) > bias(b.target);
                           return false;
                         });
        AdvanceSlow(id);
      }
    }

    /// Slow phase: contact the next relevant candidate or finish.
    void AdvanceSlow(int id) {
      while (sessions[id].next_candidate < sessions[id].pending.size()) {
        Session& s = sessions[id];
        auto& c = s.pending[s.next_candidate++];
        if (!policy().IsLinkRelevant(s.query, s.global, c.area)) {
          if (s.span != obs::kNoSpan) {
            self->tracer_->span(s.span).links_pruned += 1;
          }
          continue;
        }
        if (s.span != obs::kNoSpan) {
          self->tracer_->span(s.span).links_forwarded += 1;
        }
        if (profiler() != nullptr) profiler()->OnQueueDepth(s.peer, 1);
        NewRequest(id, c.target, s.global, std::move(c.area), s.r - 1);
        return;  // wait for the response (or the retry budget)
      }
      FinishSession(id);
    }

    /// A child (or fast-subtree) responded with a bundle of local states.
    void OnResponse(int id, std::vector<LocalState> bundle) {
      Session& s = sessions[id];
      if (s.fast) {
        for (LocalState& st : bundle) s.bundle.push_back(std::move(st));
        if (--s.outstanding_children == 0) FinishSession(id);
      } else {
        if (s.span != obs::kNoSpan) {
          self->tracer_->span(s.span).states_merged += bundle.size();
        }
        {
          obs::ScopedTimer cpu(profiler(), s.peer);
          policy().MergeLocalStates(s.query, &s.local, bundle);
          s.global = policy().ComputeGlobalState(s.query, s.incoming, s.local);
        }
        AdvanceSlow(id);
      }
    }

    /// A child could not be reached within the retry budget: fold in what
    /// we have and continue without its subtree.
    void ChildFailed(int id) {
      Session& s = sessions[id];
      if (s.fast) {
        if (--s.outstanding_children == 0) FinishSession(id);
      } else {
        AdvanceSlow(id);
      }
    }

    /// Lines 12-13 / 19-21: report the state upward, ship the answer.
    void FinishSession(int id) {
      Session& s = sessions[id];
      // The final local state drives the answer extraction (fast sessions
      // never merged, so s.local is the line-1 state, as in Alg. 1).
      Answer answer;
      {
        obs::ScopedTimer cpu(profiler(), s.peer);
        answer = policy().ComputeLocalAnswer(overlay().GetPeer(s.peer).store,
                                             s.query, s.local);
      }
      const size_t tuples = policy().AnswerTupleCount(answer);
      if (tuples > 0) {
        SendAnswer(s.peer, std::move(answer), tuples, s.span);
      }
      if (s.span != obs::kNoSpan) {
        obs::Tracer* tracer = self->tracer_;
        obs::Span& sp = tracer->span(s.span);
        sp.state_tuples = policy().StateTupleCount(s.local);
        sp.answer_tuples = tuples;
        tracer->EndSpan(s.span, sim.now());
      }

      // In the protocol, fast-phase peers address their states directly to
      // the nearest slow ancestor u (Alg. 3 keeps forwarding u through the
      // fast phase), so state messages are accounted exactly once — at the
      // slow session that consumes them; the convergecast through fast
      // sessions only exists for completion detection. The reply cache is
      // encoded once here (one frame per state) and reshipped verbatim on
      // retransmitted queries.
      if (s.parent >= 0) {
        std::vector<LocalState> bundle_out;
        if (s.fast) bundle_out = std::move(s.bundle);
        bundle_out.push_back(s.local);
        const net::Envelope env = ResponseEnvelope(id);
        wire::Buffer buf;
        for (const LocalState& st : bundle_out) {
          const size_t bytes = codec.EncodeResponseFrame(env, st, &buf);
          s.response_parts.push_back({bytes, policy().StateTupleCount(st)});
        }
        s.response_frame = buf.Take();
      }
      sessions.Close(id);
      if (s.parent >= 0) {
        SendResponse(id);
      } else {
        root_done = true;
        root_finish_time = sim.now();
        MaybeStop();
      }
    }

    // --- requests, timeouts, retries -------------------------------------

    /// Issues a new logical query forward from session `requester`,
    /// snapshotting the encoded frame so every (re)transmission is
    /// byte-identical.
    void NewRequest(int requester, PeerId target, const GlobalState& state,
                    Area area, int r) {
      const int64_t id = static_cast<int64_t>(requests.size());
      requests.push_back(PendingRequest{});
      PendingRequest& rq = requests[id];
      rq.requester = requester;
      rq.from = sessions[requester].peer;
      rq.target = target;
      rq.tuples = policy().GlobalStateTupleCount(state);
      rq.timeout = retry().timeout;
      const net::Envelope env{static_cast<uint64_t>(id), rq.from, target,
                              net::MessageKind::kQuery, 0,
                              TraceFor(sessions[requester].span)};
      wire::Buffer buf;
      codec.EncodeQueryMessage(env, sessions[requester].query, state, area, r,
                               &buf);
      rq.frame = buf.Take();
      TransmitQuery(id);
    }

    net::Envelope QueryEnvelope(int64_t id) const {
      const PendingRequest& rq = requests[id];
      return net::Envelope{static_cast<uint64_t>(id), rq.from, rq.target,
                           net::MessageKind::kQuery, rq.attempt,
                           TraceFor(sessions[rq.requester].span)};
    }

    net::Envelope ResponseEnvelope(int id) const {
      const Session& s = sessions[id];
      return net::Envelope{static_cast<uint64_t>(s.origin_req), s.peer,
                           sessions[s.parent].peer,
                           net::MessageKind::kResponse, 0,
                           TraceFor(s.span)};
    }

    net::Envelope AnswerEnvelope(size_t idx) const {
      const PendingAnswer& a = answers[idx];
      return net::Envelope{static_cast<uint64_t>(idx), a.from,
                           request->initiator, net::MessageKind::kAnswer,
                           a.attempt, TraceFor(a.span)};
    }

    void TransmitQuery(int64_t id) {
      PendingRequest& rq = requests[id];
      rq.attempt += 1;
      result.stats.messages += 1;
      result.stats.tuples_shipped += rq.tuples;
      result.stats.bytes_on_wire += rq.frame.size();
      traffic.bytes_query += rq.frame.size();
      traffic.frames += 1;
      if (profiler() != nullptr) {
        profiler()->OnMessage(rq.from, rq.target, rq.tuples, rq.frame.size());
        if (rq.attempt > 1) profiler()->OnRetransmission(rq.from);
      }
      const net::Envelope env = QueryEnvelope(id);
      JournalFrame(rq.attempt > 1 ? obs::JournalEventKind::kRetransmit
                                  : obs::JournalEventKind::kFrameSend,
                   rq.from, env, rq.frame.size());
      SendDatagram(env, std::vector<uint8_t>(rq.frame));
      if (ft) {
        requests[id].timer =
            timers.Arm(requests[id].timeout, [this, id] { OnTimeout(id); });
      }
    }

    void DeliverQuery(int64_t id, const std::vector<uint8_t>& datagram) {
      PendingRequest& rq = requests[id];
      if (ft) {
        net::DedupWindow& window = DedupOf(rq.target);
        if (const int64_t* session =
                window.Lookup(static_cast<uint64_t>(id))) {
          // Retransmission or network duplicate of a query we have seen:
          // answer from the reply cache, or ack that we are still on it.
          result.coverage.duplicates_suppressed += 1;
          const int s = static_cast<int>(*session);
          if (sessions[s].finished) {
            ResendResponse(s);
          } else {
            SendAck(id, s);
          }
          return;
        }
      }
      wire::Reader r(datagram);
      net::Envelope env;
      Query q{};
      GlobalState g{};
      Area area{};
      int64_t hops = 0;
      const wire::FrameError ferr = net::DecodeEnvelopeFrameEx(&r, &env);
      const bool ok = ferr == wire::FrameError::kOk &&
                      env.kind == net::MessageKind::kQuery &&
                      codec.DecodeQueryPayload(&r, &q, &g, &area, &hops) &&
                      r.ok() && r.remaining() == 0;
      if (!ok) {
        // Dropped: the requester's timer retransmits the byte-identical
        // frame. The id must NOT enter the dedup window, or the (equally
        // corrupted-looking to us, but possibly clean) retransmission
        // would be wrongly suppressed.
        RejectFrame(ferr);
        return;
      }
      JournalFrame(obs::JournalEventKind::kFrameRecv, rq.target, env,
                   datagram.size());
      if (ft) {
        DedupOf(rq.target).Insert(static_cast<uint64_t>(id),
                                  static_cast<int64_t>(sessions.size()));
      }
      // The receiver's span parents off whatever the frame header carried.
      StartSession(rq.target, std::move(q), std::move(g), std::move(area),
                   static_cast<int>(hops), rq.requester, id,
                   env.trace.parent_span);
    }

    void OnTimeout(int64_t id) {
      PendingRequest& rq = requests[id];
      if (rq.resolved) return;
      // A crashed requester stops timing out; its own parent handles it.
      if (fault.CrashedAt(rq.from, sim.now())) return;
      result.coverage.timeouts += 1;
      const uint32_t span = sessions[rq.requester].span;
      if (span != obs::kNoSpan) self->tracer_->span(span).timeouts += 1;
      if (rq.strikes >= retry().max_retries) {
        GiveUp(id);
        return;
      }
      rq.strikes += 1;
      rq.timeout = BackedOffTimeout(rq.timeout, retry());
      result.coverage.retries += 1;
      if (span != obs::kNoSpan) self->tracer_->span(span).retries += 1;
      TransmitQuery(id);
    }

    /// The retry budget for this link is spent: degrade gracefully.
    void GiveUp(int64_t id) {
      PendingRequest& rq = requests[id];
      rq.resolved = true;
      rq.failed = true;
      result.coverage.links_unresolved += 1;
      NoteUnreachable(rq.target);
      if (fault.CrashedAt(rq.target, sim.now())) NoteCrashed(rq.target);
      ChildFailed(rq.requester);
    }

    /// Progress ack for a request whose still-running session is
    /// `session_id` (a bare header-only frame; charged like any other
    /// message).
    void SendAck(int64_t id, int session_id) {
      PendingRequest& rq = requests[id];
      result.coverage.acks += 1;
      result.stats.messages += 1;
      const net::Envelope env{static_cast<uint64_t>(id), rq.target, rq.from,
                              net::MessageKind::kAck, 0,
                              TraceFor(sessions[session_id].span)};
      wire::Buffer buf;
      const size_t bytes = codec.EncodeAckMessage(env, &buf);
      result.stats.bytes_on_wire += bytes;
      traffic.bytes_ack += bytes;
      traffic.frames += 1;
      if (profiler() != nullptr) {
        profiler()->OnMessage(rq.target, rq.from, 0, bytes);
      }
      JournalFrame(obs::JournalEventKind::kFrameSend, rq.target, env, bytes);
      SendDatagram(env, buf.Take());
    }

    /// A progress ack arrived at the requester: restore its patience. An
    /// ack is pure optimization — a corrupted one is silently dropped (no
    /// retransmission; the next timeout re-asks the question anyway).
    void DeliverAck(int64_t id, const std::vector<uint8_t>& datagram) {
      wire::Reader r(datagram);
      net::Envelope ack;
      const wire::FrameError ferr = net::DecodeEnvelopeFrameEx(&r, &ack);
      if (ferr != wire::FrameError::kOk ||
          ack.kind != net::MessageKind::kAck || r.remaining() != 0) {
        RejectFrame(ferr);  // corrupted ack: silently dropped
        return;
      }
      PendingRequest& pending = requests[id];
      JournalFrame(obs::JournalEventKind::kFrameRecv, pending.from, ack,
                   datagram.size());
      if (!pending.resolved) pending.strikes = 0;
    }

    // --- responses --------------------------------------------------------

    /// Ships session `id`'s encoded reply-cache datagram to its requester.
    /// Response messages are charged one per state frame, and only at slow
    /// requesters (see FinishSession); retransmissions are charged again.
    /// A fast requester's convergecast bundle still crosses the transport
    /// (bytes exist on the wire) but stays uncharged, mirroring the
    /// message accounting.
    void SendResponseWire(int id, bool charge_retry) {
      Session& s = sessions[id];
      const int parent = s.parent;
      if (!sessions[parent].fast) {
        result.stats.messages += s.response_parts.size();
        for (const auto& part : s.response_parts) {
          result.stats.tuples_shipped += part.tuples;
          result.stats.bytes_on_wire += part.bytes;
          traffic.bytes_response += part.bytes;
          traffic.frames += 1;
          if (profiler() != nullptr) {
            profiler()->OnMessage(s.peer, sessions[parent].peer, part.tuples,
                                  part.bytes);
          }
        }
      }
      if (charge_retry) {
        result.coverage.retries += 1;
        if (profiler() != nullptr) profiler()->OnRetransmission(s.peer);
      }
      const net::Envelope env = ResponseEnvelope(id);
      JournalFrame(charge_retry ? obs::JournalEventKind::kRetransmit
                                : obs::JournalEventKind::kFrameSend,
                   s.peer, env, s.response_frame.size());
      SendDatagram(env, std::vector<uint8_t>(s.response_frame));
    }

    void SendResponse(int id) { SendResponseWire(id, /*charge_retry=*/false); }
    void ResendResponse(int id) { SendResponseWire(id, /*charge_retry=*/true); }

    void DeliverResponse(int64_t req_id, const std::vector<uint8_t>& datagram) {
      if (req_id < 0) return;
      PendingRequest& rq = requests[req_id];
      if (rq.resolved) {
        // Duplicate of a consumed response, or a response arriving after
        // the requester gave up on the link.
        if (rq.failed) {
          result.coverage.late_responses += 1;
        } else {
          result.coverage.duplicates_suppressed += 1;
        }
        return;
      }
      // Walk the datagram's back-to-back state frames.
      std::vector<LocalState> bundle;
      wire::Reader r(datagram);
      wire::FrameError ferr = datagram.empty() ? wire::FrameError::kTruncated
                                               : wire::FrameError::kOk;
      bool ok = !datagram.empty();
      net::Envelope env;  // the first frame's header, for the journal
      while (ok && r.remaining() > 0) {
        wire::FrameHeader h;
        const wire::FrameError e = wire::DecodeFrameHeaderEx(&r, &h);
        if (e != wire::FrameError::kOk) {
          ok = false;
          ferr = e;
          break;
        }
        if (h.tag != static_cast<uint8_t>(net::MessageKind::kResponse) ||
            h.id != static_cast<uint64_t>(req_id)) {
          ok = false;
          break;
        }
        const size_t frame_end = r.position() + wire::FramePayloadSize(h);
        LocalState st{};
        if (!codec.DecodeResponsePayload(&r, &st) || !r.ok() ||
            r.position() != frame_end) {
          ok = false;
          break;
        }
        if (bundle.empty()) {
          env.id = h.id;
          env.from = h.from;
          env.to = h.to;
          env.kind = net::MessageKind::kResponse;
          env.trace = h.trace;
        }
        bundle.push_back(std::move(st));
      }
      if (!ok) {
        // Dropped: the requester times out, retransmits its query, and the
        // finished callee reships the cached response bytes.
        RejectFrame(ferr);
        return;
      }
      JournalFrame(obs::JournalEventKind::kFrameRecv, rq.from, env,
                   datagram.size());
      rq.resolved = true;
      if (ft) timers.Cancel(rq.timer);
      OnResponse(rq.requester, std::move(bundle));
    }

    // --- answers ----------------------------------------------------------

    /// Answer deliveries ride a (bounded-retry) reliable channel: the
    /// sender retransmits lost or corrupted answers after the retry
    /// timeout until the budget is spent, then the loss is recorded in
    /// coverage and the result is flagged partial.
    void SendAnswer(PeerId from, Answer&& payload, size_t tuples,
                    uint32_t span) {
      const size_t idx = answers.size();
      answers.push_back(PendingAnswer{});
      PendingAnswer& a = answers[idx];
      a.from = from;
      a.tuples = tuples;
      a.span = span;
      const net::Envelope env{static_cast<uint64_t>(idx), from,
                              request->initiator, net::MessageKind::kAnswer,
                              0, TraceFor(span)};
      wire::Buffer buf;
      codec.EncodeAnswerMessage(env, payload, &buf);
      a.frame = buf.Take();
      ++answers_outstanding;
      TransmitAnswer(idx);
    }

    void TransmitAnswer(size_t idx) {
      PendingAnswer& a = answers[idx];
      a.attempt += 1;
      result.stats.messages += 1;
      result.stats.tuples_shipped += a.tuples;
      result.stats.bytes_on_wire += a.frame.size();
      traffic.bytes_answer += a.frame.size();
      traffic.frames += 1;
      if (profiler() != nullptr) {
        profiler()->OnMessage(a.from, request->initiator, a.tuples,
                              a.frame.size());
        if (a.attempt > 1) profiler()->OnRetransmission(a.from);
      }
      const net::Envelope env = AnswerEnvelope(idx);
      JournalFrame(a.attempt > 1 ? obs::JournalEventKind::kRetransmit
                                 : obs::JournalEventKind::kFrameSend,
                   a.from, env, a.frame.size());
      SendDatagram(env, std::vector<uint8_t>(a.frame));
      if (ft) {
        // The fire-and-forget wire gives the sender no failure signal, so
        // every transmission is covered by a watchdog: delivery cancels
        // it, loss / swallowing / receiver-side rejection lets it fire.
        answers[idx].timer = timers.Arm(
            retry().timeout, [this, idx] { OnAnswerTimeout(idx); });
      }
    }

    /// The answer datagram came back from the transport: run it through
    /// the simulated network towards the initiator. Same fault-draw
    /// order as Transmit (drop, jitter, duplicate) — kept separate
    /// because a dropped answer needs no requester-side bookkeeping, the
    /// sender's watchdog recovers it.
    void OnAnswerWire(const net::Envelope& env, std::vector<uint8_t> bytes) {
      const size_t idx = static_cast<size_t>(env.id);
      const double base = self->latency_(env.from, env.to);
      if (!ft) {
        // Answer delivery rides the clock but needs no handler state.
        sim.Schedule(base, [this, idx, datagram = std::move(bytes)] {
          DeliverAnswer(idx, datagram);
        });
        return;
      }
      if (fault.DropMessage()) {
        result.coverage.messages_lost += 1;
        JournalFrame(obs::JournalEventKind::kDrop, env.from, env, 0);
        return;  // the sender's watchdog retransmits
      }
      const double d = fault.Jitter(base);
      if (fault.DuplicateMessage()) {
        result.coverage.messages_duplicated += 1;
        ScheduleDelivery(env, env.to, fault.Jitter(base),
                         [this, idx, datagram = bytes] {
                           DeliverAnswer(idx, datagram);
                         });
      }
      ScheduleDelivery(env, env.to, d,
                       [this, idx, datagram = std::move(bytes)] {
                         DeliverAnswer(idx, datagram);
                       });
    }

    /// The watchdog fired with no delivery: the transmission failed (loss
    /// in transit, swallowed by the transport, or the initiator rejected
    /// corrupted bytes). Retransmit, or spend the budget and record the
    /// loss.
    void OnAnswerTimeout(size_t idx) {
      PendingAnswer& a = answers[idx];
      if (a.settled) return;
      if (a.attempt > retry().max_retries) {
        result.coverage.answers_lost += 1;
        SettleAnswer(idx);
        return;
      }
      result.coverage.retries += 1;
      if (fault.CrashedAt(a.from, sim.now())) {
        // The sender died holding the only copy.
        result.coverage.answers_lost += 1;
        SettleAnswer(idx);
        return;
      }
      TransmitAnswer(idx);
    }

    void DeliverAnswer(size_t idx, const std::vector<uint8_t>& datagram) {
      PendingAnswer& a = answers[idx];
      if (a.settled) {
        result.coverage.duplicates_suppressed += 1;
        return;
      }
      wire::Reader r(datagram);
      net::Envelope env;
      Answer payload{};
      const wire::FrameError ferr = net::DecodeEnvelopeFrameEx(&r, &env);
      const bool ok = ferr == wire::FrameError::kOk &&
                      env.kind == net::MessageKind::kAnswer &&
                      codec.DecodeAnswerPayload(&r, &payload) && r.ok() &&
                      r.remaining() == 0;
      if (!ok) {
        // The initiator saw garbage; the elided nack of the reliable
        // answer channel becomes a sender-side watchdog retransmission.
        RejectFrame(ferr);
        return;
      }
      JournalFrame(obs::JournalEventKind::kFrameRecv, request->initiator,
                   env, datagram.size());
      policy().MergeAnswer(&result.answer, std::move(payload),
                           request->query);
      last_answer_time = std::max(last_answer_time, sim.now());
      if (ft) timers.Cancel(a.timer);
      SettleAnswer(idx);
    }

    void SettleAnswer(size_t idx) {
      answers[idx].settled = true;
      --answers_outstanding;
      MaybeStop();
    }

    // --- termination ------------------------------------------------------

    /// Once the initiator's session closed and every answer settled, the
    /// query is over; surviving events are lapsed retry timers and
    /// convergecast bookkeeping of abandoned subtrees.
    void MaybeStop() {
      if (root_done && answers_outstanding == 0) sim.Stop();
    }

    /// The request deadline fired before the root closed: every pending
    /// forward is declared unresolved and the initiator returns what it
    /// folded so far.
    void OnDeadline() {
      if (root_done && answers_outstanding == 0) return;
      deadline_hit = true;
      for (size_t i = 0; i < requests.size(); ++i) {
        PendingRequest& rq = requests[i];
        if (rq.resolved) continue;
        rq.resolved = true;
        rq.failed = true;
        result.coverage.links_unresolved += 1;
        NoteUnreachable(rq.target);
      }
      sim.Stop();
    }

    net::DedupWindow& DedupOf(PeerId peer) {
      auto it = query_dedup.find(peer);
      if (it == query_dedup.end()) {
        it = query_dedup
                 .emplace(peer, net::DedupWindow(retry().dedup_window))
                 .first;
      }
      return it->second;
    }
  };

  const Overlay* overlay_;
  Policy policy_;
  LatencyModel latency_;
  std::function<void(PeerId)> visit_observer_;
  std::function<double(PeerId)> link_bias_;
  obs::Tracer* tracer_ = nullptr;
  obs::JournalSet* journal_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
  net::Transport* transport_ = nullptr;
  mutable net::LoopbackTransport default_transport_;
};

}  // namespace ripple

#endif  // RIPPLE_SIM_ASYNC_ENGINE_H_
