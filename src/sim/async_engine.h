#ifndef RIPPLE_SIM_ASYNC_ENGINE_H_
#define RIPPLE_SIM_ASYNC_ENGINE_H_

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/check.h"
#include "net/coverage.h"
#include "net/envelope.h"
#include "net/fault.h"
#include "net/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "overlay/types.h"
#include "ripple/api.h"
#include "ripple/policy.h"
#include "sim/event_sim.h"
#include "sim/fault_model.h"

namespace ripple {

/// Per-message network delay: (from, to) -> time units. The default charges
/// one unit per hop, mirroring the hop-count analysis.
using LatencyModel = std::function<double(PeerId from, PeerId to)>;

inline LatencyModel UnitLatency() {
  return [](PeerId, PeerId) { return 1.0; };
}

/// Message-level asynchronous execution of the RIPPLE algorithms.
///
/// The recursive Engine evaluates Algorithms 1-3 as function calls with
/// analytic latency accounting; this class executes the *same* policies as
/// explicit messages through a discrete-event scheduler, the way deployed
/// peers would: query forwards, per-subtree state responses (fast-phase
/// subtrees convergecast their state bundles), and answer deliveries to
/// the initiator, each taking LatencyModel time on the wire.
///
/// Fault tolerance: when the request's FaultOptions describe an imperfect
/// network (AnyFault()), every transmission runs through a deterministic
/// FaultModel (loss, duplication, delay jitter, peer crashes) and the
/// protocol arms itself:
///  * every logical message carries an id; retransmissions reuse it and
///    receivers suppress duplicates through per-peer dedup windows;
///  * requesters arm per-message timers with capped exponential backoff;
///    a finished callee answers retransmitted queries from its reply
///    cache, a still-running callee sends a progress ack that restores the
///    requester's patience;
///  * after `max_retries` consecutive silent timeouts the requester gives
///    up on the link, folds in what it has, and the result is returned
///    flagged `complete = false` with a Coverage report.
/// With the default (perfect-network) options none of this machinery
/// exists at runtime and the engine keeps its cross-validation contract:
///
/// For any query, overlay and ripple parameter, the fault-free async
/// execution produces exactly the same answer, the same set of visited
/// peers and the same message count as the recursive engine; its
/// completion time upper-bounds the engine's forward-hop latency
/// (responses ride the clock here, not in the lemma-style accounting).
template <typename Overlay, typename Policy>
  requires QueryPolicy<Policy, typename Overlay::Area>
class AsyncEngine {
 public:
  using Area = typename Overlay::Area;
  using Query = typename Policy::Query;
  using LocalState = typename Policy::LocalState;
  using GlobalState = typename Policy::GlobalState;
  using Answer = typename Policy::Answer;
  using Request = QueryRequest<Policy>;
  using Result = QueryResult<Answer>;

  AsyncEngine(const Overlay* overlay, Policy policy,
              LatencyModel latency = UnitLatency())
      : overlay_(overlay),
        policy_(std::move(policy)),
        latency_(std::move(latency)) {}

  /// Attaches a tracer recording one span per session, stamped with
  /// simulator time (so wire delays from the LatencyModel are visible in
  /// the trace). Same contract as Engine::SetTracer: nullptr disables,
  /// not owned, QueryStats are identical either way. Under faults, spans
  /// additionally carry per-session retry/timeout counts.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Observer invoked for every peer that opens a session (one activation
  /// per visited peer — same contract as Engine::SetVisitObserver, so
  /// callers studying per-peer load can treat both engines uniformly).
  /// Pass nullptr to clear.
  void SetVisitObserver(std::function<void(PeerId)> observer) {
    visit_observer_ = std::move(observer);
  }

  /// Attaches a per-peer load profiler (same contract as
  /// Engine::SetProfiler: message charges mirror QueryStats at the
  /// sender, so totals cross-check; here the profiler additionally sees
  /// retransmissions, acks and per-peer fan-out high-water marks from
  /// the fault machinery). nullptr disables; not owned.
  void SetProfiler(obs::Profiler* profiler) { profiler_ = profiler; }
  obs::Profiler* profiler() const { return profiler_; }

  const Policy& policy() const { return policy_; }

  Result Run(const Request& request) const {
    Runtime rt(this, &request);
    rt.Start();
    rt.sim.Run();
    return rt.Finalize();
  }

 private:
  static constexpr int kNoSession = -1;
  static constexpr int64_t kNoRequest = -1;

  /// One activation of the per-peer procedure (each peer is activated at
  /// most once per query thanks to disjoint restriction areas and the
  /// dedup windows).
  struct Session {
    PeerId peer = kInvalidPeer;
    GlobalState incoming{};   // S^G as received
    GlobalState global{};     // S^G_w, updated between iterations
    LocalState local{};       // S^L_w
    Area area{};
    int r = 0;
    int parent = kNoSession;  // session index to respond to; -1 == root
    int64_t origin_req = kNoRequest;  // request id that spawned us
    // Slow phase: prioritized candidates still to consider.
    struct Candidate {
      PeerId target;
      Area area;
      double priority;
    };
    std::vector<Candidate> pending;
    size_t next_candidate = 0;
    // Fast phase: responses still expected before this session closes.
    int outstanding_children = 0;
    // Fast phase: state bundle accumulated for the slow ancestor.
    std::vector<LocalState> bundle;
    bool fast = false;
    bool finished = false;
    // Reply cache: the state bundle this session reported, kept so a
    // retransmitted query can be answered without re-execution.
    std::vector<LocalState> bundle_out;
    // Trace span of this session (kNoSpan when tracing is off).
    uint32_t span = obs::kNoSpan;
  };

  /// One logical query forward awaiting a response. Retransmissions reuse
  /// the entry (and its message id); the payload snapshot is kept so a
  /// retransmission resends exactly what the first attempt carried.
  struct PendingRequest {
    int requester = kNoSession;  // session waiting for the response
    PeerId from = kInvalidPeer;
    PeerId target = kInvalidPeer;
    GlobalState state{};
    Area area{};
    int r = 0;
    int attempt = 0;       // transmissions so far
    int strikes = 0;       // consecutive timeouts without response/ack
    double timeout = 0;    // current (backed-off) patience
    bool resolved = false; // response consumed, or given up
    bool failed = false;   // given up after the retry budget
    uint64_t timer = 0;    // live TimerWheel handle
  };

  /// One answer delivery to the initiator, with sender-side retransmission
  /// on loss (the answer channel models a reliable transport whose acks
  /// are elided from the accounting; retransmissions are not).
  struct PendingAnswer {
    PeerId from = kInvalidPeer;
    Answer payload{};
    size_t tuples = 0;
    int attempt = 0;
    bool settled = false;  // delivered once, or lost for good
  };

  struct Runtime {
    Runtime(const AsyncEngine* engine, const Request* req)
        : self(engine),
          request(req),
          ft(req->fault.AnyFault()),
          fault(req->fault, req->initiator),
          timers(&sim) {}

    const AsyncEngine* self;
    const Request* request;
    const bool ft;  // fault machinery armed
    FaultModel fault;
    EventSimulator sim;
    TimerWheel timers;
    std::vector<Session> sessions;
    std::vector<PendingRequest> requests;  // indexed by message id
    std::vector<PendingAnswer> answers;
    std::unordered_map<PeerId, net::DedupWindow> query_dedup;
    Result result;
    int open_sessions = 0;
    int answers_outstanding = 0;
    bool root_done = false;
    bool deadline_hit = false;
    double root_finish_time = 0;
    double last_answer_time = 0;

    const Policy& policy() const { return self->policy_; }
    const Overlay& overlay() const { return *self->overlay_; }
    const net::RetryOptions& retry() const { return request->retry; }
    obs::Profiler* profiler() const { return self->profiler_; }

    // --- entry / exit ----------------------------------------------------

    void Start() {
      if (ft && std::isfinite(request->deadline)) {
        sim.Schedule(request->deadline, [this] { OnDeadline(); });
      }
      GlobalState initial =
          request->initial_state.has_value()
              ? *request->initial_state
              : policy().InitialGlobalState(request->query);
      // The initiator's root session has no parent and no envelope.
      StartSession(request->initiator, std::move(initial),
                   overlay().FullArea(), request->ripple.hops(),
                   /*parent=*/kNoSession, kNoRequest);
    }

    Result Finalize() {
      if (!ft && !std::isfinite(request->deadline)) {
        RIPPLE_CHECK(open_sessions == 0 &&
                     "async run left dangling sessions");
      }
      policy().FinalizeAnswer(&result.answer, request->query);
      result.completion_time = std::max(root_finish_time, last_answer_time);
      if (deadline_hit) {
        result.completion_time = std::max(result.completion_time, sim.now());
      }
      result.complete = result.coverage.complete() && !deadline_hit;
      net::RecordCoverageMetrics(result.coverage);
      return std::move(result);
    }

    // --- wire ------------------------------------------------------------

    /// Schedules a delivery callback at `to` after wire delay, dropping it
    /// if the receiver has crashed by then. `deliver` must be idempotent
    /// against duplicate copies (all receive paths dedup).
    void ScheduleDelivery(PeerId to, double delay,
                          std::function<void()> deliver) {
      sim.Schedule(delay, [this, to, deliver = std::move(deliver)] {
        if (ft && fault.CrashedAt(to, sim.now())) {
          result.coverage.crash_drops += 1;
          NoteCrashed(to);
          return;
        }
        deliver();
      });
    }

    /// One wire transmission from -> to, subject to loss / jitter /
    /// duplication. The caller has already charged the message to stats.
    void Transmit(PeerId from, PeerId to, std::function<void()> deliver) {
      const double base = self->latency_(from, to);
      if (!ft) {
        sim.Schedule(base, std::move(deliver));
        return;
      }
      if (fault.DropMessage()) {
        result.coverage.messages_lost += 1;
        return;
      }
      const double d = fault.Jitter(base);
      if (fault.DuplicateMessage()) {
        result.coverage.messages_duplicated += 1;
        ScheduleDelivery(to, fault.Jitter(base), deliver);
      }
      ScheduleDelivery(to, d, std::move(deliver));
    }

    void NoteCrashed(PeerId peer) {
      auto& v = result.coverage.crashed_peers;
      auto it = std::lower_bound(v.begin(), v.end(), peer);
      if (it == v.end() || *it != peer) v.insert(it, peer);
    }

    void NoteUnreachable(PeerId peer) {
      auto& v = result.coverage.unreachable_peers;
      auto it = std::lower_bound(v.begin(), v.end(), peer);
      if (it == v.end() || *it != peer) v.insert(it, peer);
    }

    // --- sessions (the RIPPLE procedure itself) --------------------------

    /// Delivers the query to `peer` (caller already charged the message).
    void StartSession(PeerId peer, GlobalState state, Area area, int r,
                      int parent, int64_t origin_req) {
      const int id = static_cast<int>(sessions.size());
      sessions.push_back(Session{});
      Session& s = sessions[id];
      s.peer = peer;
      s.incoming = std::move(state);
      s.area = std::move(area);
      s.r = r;
      s.parent = parent;
      s.origin_req = origin_req;
      s.fast = r <= 0;
      ++open_sessions;
      result.stats.peers_visited += 1;
      if (self->visit_observer_) self->visit_observer_(peer);
      if (profiler() != nullptr) profiler()->OnSpan(peer);
      if (obs::Tracer* tracer = self->tracer_) {
        const uint32_t parent_span =
            parent < 0 ? obs::kNoSpan : sessions[parent].span;
        s.span = tracer->StartSpan(
            peer, parent_span,
            s.fast ? obs::SpanKind::kFast : obs::SpanKind::kSlow, r,
            sim.now());
        tracer->span(s.span).tuples_in =
            policy().GlobalStateTupleCount(s.incoming);
      }

      const auto& node = overlay().GetPeer(peer);
      {
        obs::ScopedTimer cpu(profiler(), peer);
        s.local = policy().ComputeLocalState(node.store, request->query,
                                             s.incoming);
        s.global =
            policy().ComputeGlobalState(request->query, s.incoming,
                                        s.local);
      }

      if (s.fast) {
        // Algorithm 1 / Algorithm 3 second loop: forward everywhere at
        // once with the state snapshot.
        std::vector<std::pair<PeerId, Area>> targets;
        for (const auto& link : node.links) {
          Area restricted;
          if (!Overlay::IntersectArea(link.region, s.area, &restricted)) {
            continue;
          }
          if (!policy().IsLinkRelevant(request->query, s.global,
                                       restricted)) {
            if (s.span != obs::kNoSpan) {
              self->tracer_->span(s.span).links_pruned += 1;
            }
            continue;
          }
          targets.emplace_back(link.target, std::move(restricted));
        }
        if (s.span != obs::kNoSpan) {
          self->tracer_->span(s.span).links_forwarded = targets.size();
        }
        // Fast-phase fan-out: every relevant link outstanding at once.
        if (profiler() != nullptr && !targets.empty()) {
          profiler()->OnQueueDepth(peer, targets.size());
        }
        sessions[id].outstanding_children = static_cast<int>(targets.size());
        for (auto& [target, restricted] : targets) {
          NewRequest(id, target, sessions[id].global, std::move(restricted),
                     0);
        }
        if (sessions[id].outstanding_children == 0) FinishSession(id);
      } else {
        // Algorithm 2 / Algorithm 3 first loop: prioritized, sequential.
        for (const auto& link : node.links) {
          Area restricted;
          if (!Overlay::IntersectArea(link.region, s.area, &restricted)) {
            continue;
          }
          const double priority =
              policy().LinkPriority(request->query, restricted);
          s.pending.push_back(typename Session::Candidate{
              link.target, std::move(restricted), priority});
        }
        std::stable_sort(s.pending.begin(), s.pending.end(),
                         [](const auto& a, const auto& b) {
                           return a.priority > b.priority;
                         });
        AdvanceSlow(id);
      }
    }

    /// Slow phase: contact the next relevant candidate or finish.
    void AdvanceSlow(int id) {
      while (sessions[id].next_candidate < sessions[id].pending.size()) {
        Session& s = sessions[id];
        auto& c = s.pending[s.next_candidate++];
        if (!policy().IsLinkRelevant(request->query, s.global,
                                     c.area)) {
          if (s.span != obs::kNoSpan) {
            self->tracer_->span(s.span).links_pruned += 1;
          }
          continue;
        }
        if (s.span != obs::kNoSpan) {
          self->tracer_->span(s.span).links_forwarded += 1;
        }
        if (profiler() != nullptr) profiler()->OnQueueDepth(s.peer, 1);
        NewRequest(id, c.target, s.global, std::move(c.area), s.r - 1);
        return;  // wait for the response (or the retry budget)
      }
      FinishSession(id);
    }

    /// A child (or fast-subtree) responded with a bundle of local states.
    void OnResponse(int id, std::vector<LocalState> bundle) {
      Session& s = sessions[id];
      if (s.fast) {
        for (LocalState& st : bundle) s.bundle.push_back(std::move(st));
        if (--s.outstanding_children == 0) FinishSession(id);
      } else {
        if (s.span != obs::kNoSpan) {
          self->tracer_->span(s.span).states_merged += bundle.size();
        }
        {
          obs::ScopedTimer cpu(profiler(), s.peer);
          policy().MergeLocalStates(request->query, &s.local, bundle);
          s.global = policy().ComputeGlobalState(request->query,
                                                 s.incoming, s.local);
        }
        AdvanceSlow(id);
      }
    }

    /// A child could not be reached within the retry budget: fold in what
    /// we have and continue without its subtree.
    void ChildFailed(int id) {
      Session& s = sessions[id];
      if (s.fast) {
        if (--s.outstanding_children == 0) FinishSession(id);
      } else {
        AdvanceSlow(id);
      }
    }

    /// Lines 12-13 / 19-21: report the state upward, ship the answer.
    void FinishSession(int id) {
      Session& s = sessions[id];
      s.finished = true;
      // The final local state drives the answer extraction (fast sessions
      // never merged, so s.local is the line-1 state, as in Alg. 1).
      Answer answer;
      {
        obs::ScopedTimer cpu(profiler(), s.peer);
        answer = policy().ComputeLocalAnswer(
            overlay().GetPeer(s.peer).store, request->query, s.local);
      }
      const size_t tuples = policy().AnswerTupleCount(answer);
      if (tuples > 0) {
        SendAnswer(s.peer, std::move(answer), tuples);
      }
      if (s.span != obs::kNoSpan) {
        obs::Tracer* tracer = self->tracer_;
        obs::Span& sp = tracer->span(s.span);
        sp.state_tuples = policy().StateTupleCount(s.local);
        sp.answer_tuples = tuples;
        tracer->EndSpan(s.span, sim.now());
      }

      // In the protocol, fast-phase peers address their states directly to
      // the nearest slow ancestor u (Alg. 3 keeps forwarding u through the
      // fast phase), so state messages are accounted exactly once — at the
      // slow session that consumes them; the convergecast through fast
      // sessions only exists for completion detection.
      if (s.fast) {
        s.bundle_out = std::move(s.bundle);
        s.bundle_out.push_back(s.local);
      } else {
        s.bundle_out.push_back(s.local);
      }
      --open_sessions;
      if (s.parent >= 0) {
        SendResponse(id);
      } else {
        root_done = true;
        root_finish_time = sim.now();
        MaybeStop();
      }
    }

    // --- requests, timeouts, retries -------------------------------------

    /// Issues a new logical query forward from session `requester`.
    void NewRequest(int requester, PeerId target, GlobalState state,
                    Area area, int r) {
      const int64_t id = static_cast<int64_t>(requests.size());
      requests.push_back(PendingRequest{});
      PendingRequest& rq = requests[id];
      rq.requester = requester;
      rq.from = sessions[requester].peer;
      rq.target = target;
      rq.state = std::move(state);
      rq.area = std::move(area);
      rq.r = r;
      rq.timeout = retry().timeout;
      TransmitQuery(id);
    }

    void TransmitQuery(int64_t id) {
      PendingRequest& rq = requests[id];
      rq.attempt += 1;
      const uint64_t tuples = policy().GlobalStateTupleCount(rq.state);
      result.stats.messages += 1;
      result.stats.tuples_shipped += tuples;
      if (profiler() != nullptr) {
        profiler()->OnMessage(rq.from, rq.target, tuples);
        if (rq.attempt > 1) profiler()->OnRetransmission(rq.from);
      }
      Transmit(rq.from, rq.target, [this, id] { DeliverQuery(id); });
      if (ft) {
        requests[id].timer =
            timers.Arm(requests[id].timeout, [this, id] { OnTimeout(id); });
      }
    }

    void DeliverQuery(int64_t id) {
      PendingRequest& rq = requests[id];
      if (ft) {
        net::DedupWindow& window = DedupOf(rq.target);
        if (const int64_t* session = window.Lookup(static_cast<uint64_t>(id))) {
          // Retransmission or network duplicate of a query we have seen:
          // answer from the reply cache, or ack that we are still on it.
          result.coverage.duplicates_suppressed += 1;
          const int s = static_cast<int>(*session);
          if (sessions[s].finished) {
            ResendResponse(s);
          } else {
            SendAck(id);
          }
          return;
        }
        window.Insert(static_cast<uint64_t>(id),
                      static_cast<int64_t>(sessions.size()));
      }
      StartSession(rq.target, rq.state, rq.area, rq.r, rq.requester, id);
    }

    void OnTimeout(int64_t id) {
      PendingRequest& rq = requests[id];
      if (rq.resolved) return;
      // A crashed requester stops timing out; its own parent handles it.
      if (fault.CrashedAt(rq.from, sim.now())) return;
      result.coverage.timeouts += 1;
      const uint32_t span = sessions[rq.requester].span;
      if (span != obs::kNoSpan) self->tracer_->span(span).timeouts += 1;
      if (rq.strikes >= retry().max_retries) {
        GiveUp(id);
        return;
      }
      rq.strikes += 1;
      rq.timeout = std::min(rq.timeout * retry().backoff,
                            retry().timeout_cap);
      result.coverage.retries += 1;
      if (span != obs::kNoSpan) self->tracer_->span(span).retries += 1;
      TransmitQuery(id);
    }

    /// The retry budget for this link is spent: degrade gracefully.
    void GiveUp(int64_t id) {
      PendingRequest& rq = requests[id];
      rq.resolved = true;
      rq.failed = true;
      result.coverage.links_unresolved += 1;
      NoteUnreachable(rq.target);
      if (fault.CrashedAt(rq.target, sim.now())) NoteCrashed(rq.target);
      ChildFailed(rq.requester);
    }

    /// Progress ack for a request whose session is still running.
    void SendAck(int64_t id) {
      PendingRequest& rq = requests[id];
      result.coverage.acks += 1;
      result.stats.messages += 1;
      if (profiler() != nullptr) profiler()->OnMessage(rq.target, rq.from, 0);
      Transmit(rq.target, rq.from, [this, id] {
        PendingRequest& r = requests[id];
        if (!r.resolved) r.strikes = 0;  // patience restored
      });
    }

    // --- responses --------------------------------------------------------

    /// Ships session `id`'s cached state bundle to its requester. Response
    /// messages are charged one per state, and only at slow requesters
    /// (see FinishSession); retransmissions are charged again.
    void SendResponseWire(int id, bool charge_retry) {
      Session& s = sessions[id];
      const int64_t req_id = s.origin_req;
      const int parent = s.parent;
      if (!sessions[parent].fast) {
        result.stats.messages += s.bundle_out.size();
        for (const LocalState& st : s.bundle_out) {
          const uint64_t tuples = policy().StateTupleCount(st);
          result.stats.tuples_shipped += tuples;
          if (profiler() != nullptr) {
            profiler()->OnMessage(s.peer, sessions[parent].peer, tuples);
          }
        }
      }
      if (charge_retry) {
        result.coverage.retries += 1;
        if (profiler() != nullptr) profiler()->OnRetransmission(s.peer);
      }
      Transmit(s.peer, sessions[parent].peer,
               [this, req_id, bundle = s.bundle_out]() mutable {
                 DeliverResponse(req_id, std::move(bundle));
               });
    }

    void SendResponse(int id) { SendResponseWire(id, /*charge_retry=*/false); }
    void ResendResponse(int id) { SendResponseWire(id, /*charge_retry=*/true); }

    void DeliverResponse(int64_t req_id, std::vector<LocalState> bundle) {
      if (req_id < 0) return;
      PendingRequest& rq = requests[req_id];
      if (rq.resolved) {
        // Duplicate of a consumed response, or a response arriving after
        // the requester gave up on the link.
        if (rq.failed) {
          result.coverage.late_responses += 1;
        } else {
          result.coverage.duplicates_suppressed += 1;
        }
        return;
      }
      rq.resolved = true;
      if (ft) timers.Cancel(rq.timer);
      OnResponse(rq.requester, std::move(bundle));
    }

    // --- answers ----------------------------------------------------------

    /// Answer deliveries ride a (bounded-retry) reliable channel: the
    /// sender retransmits lost answers after the retry timeout until the
    /// budget is spent, then the loss is recorded in coverage and the
    /// result is flagged partial.
    void SendAnswer(PeerId from, Answer&& payload, size_t tuples) {
      const size_t idx = answers.size();
      answers.push_back(PendingAnswer{});
      PendingAnswer& a = answers[idx];
      a.from = from;
      a.payload = std::move(payload);
      a.tuples = tuples;
      ++answers_outstanding;
      TransmitAnswer(idx);
    }

    void TransmitAnswer(size_t idx) {
      PendingAnswer& a = answers[idx];
      a.attempt += 1;
      result.stats.messages += 1;
      result.stats.tuples_shipped += a.tuples;
      if (profiler() != nullptr) {
        profiler()->OnMessage(a.from, request->initiator, a.tuples);
        if (a.attempt > 1) profiler()->OnRetransmission(a.from);
      }
      if (!ft) {
        // Answer delivery rides the clock but needs no handler state.
        const PeerId from = a.from;
        sim.Schedule(self->latency_(from, request->initiator),
                     [this, idx] { DeliverAnswer(idx); });
        return;
      }
      const double base = self->latency_(a.from, request->initiator);
      if (fault.DropMessage()) {
        result.coverage.messages_lost += 1;
        if (a.attempt > retry().max_retries) {
          result.coverage.answers_lost += 1;
          SettleAnswer(idx);
          return;
        }
        result.coverage.retries += 1;
        const PeerId from = a.from;
        timers.Arm(retry().timeout, [this, idx, from] {
          if (answers[idx].settled) return;
          if (fault.CrashedAt(from, sim.now())) {
            // The sender died holding the only copy.
            result.coverage.answers_lost += 1;
            SettleAnswer(idx);
            return;
          }
          TransmitAnswer(idx);
        });
        return;
      }
      const double d = fault.Jitter(base);
      if (fault.DuplicateMessage()) {
        result.coverage.messages_duplicated += 1;
        ScheduleDelivery(request->initiator, fault.Jitter(base),
                         [this, idx] { DeliverAnswer(idx); });
      }
      ScheduleDelivery(request->initiator, d,
                       [this, idx] { DeliverAnswer(idx); });
    }

    void DeliverAnswer(size_t idx) {
      PendingAnswer& a = answers[idx];
      if (a.settled) {
        result.coverage.duplicates_suppressed += 1;
        return;
      }
      policy().MergeAnswer(&result.answer, std::move(a.payload),
                           request->query);
      last_answer_time = std::max(last_answer_time, sim.now());
      SettleAnswer(idx);
    }

    void SettleAnswer(size_t idx) {
      answers[idx].settled = true;
      --answers_outstanding;
      MaybeStop();
    }

    // --- termination ------------------------------------------------------

    /// Once the initiator's session closed and every answer settled, the
    /// query is over; surviving events are lapsed retry timers and
    /// convergecast bookkeeping of abandoned subtrees.
    void MaybeStop() {
      if (root_done && answers_outstanding == 0) sim.Stop();
    }

    /// The request deadline fired before the root closed: every pending
    /// forward is declared unresolved and the initiator returns what it
    /// folded so far.
    void OnDeadline() {
      if (root_done && answers_outstanding == 0) return;
      deadline_hit = true;
      for (size_t i = 0; i < requests.size(); ++i) {
        PendingRequest& rq = requests[i];
        if (rq.resolved) continue;
        rq.resolved = true;
        rq.failed = true;
        result.coverage.links_unresolved += 1;
        NoteUnreachable(rq.target);
      }
      sim.Stop();
    }

    net::DedupWindow& DedupOf(PeerId peer) {
      auto it = query_dedup.find(peer);
      if (it == query_dedup.end()) {
        it = query_dedup
                 .emplace(peer, net::DedupWindow(retry().dedup_window))
                 .first;
      }
      return it->second;
    }
  };

  const Overlay* overlay_;
  Policy policy_;
  LatencyModel latency_;
  std::function<void(PeerId)> visit_observer_;
  obs::Tracer* tracer_ = nullptr;
  obs::Profiler* profiler_ = nullptr;
};

}  // namespace ripple

#endif  // RIPPLE_SIM_ASYNC_ENGINE_H_
