#ifndef RIPPLE_SIM_ASYNC_ENGINE_H_
#define RIPPLE_SIM_ASYNC_ENGINE_H_

#include <algorithm>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.h"
#include "net/metrics.h"
#include "obs/trace.h"
#include "overlay/types.h"
#include "ripple/policy.h"
#include "sim/event_sim.h"

namespace ripple {

/// Per-message network delay: (from, to) -> time units. The default charges
/// one unit per hop, mirroring the hop-count analysis.
using LatencyModel = std::function<double(PeerId from, PeerId to)>;

inline LatencyModel UnitLatency() {
  return [](PeerId, PeerId) { return 1.0; };
}

/// Message-level asynchronous execution of the RIPPLE algorithms.
///
/// The recursive Engine evaluates Algorithms 1-3 as function calls with
/// analytic latency accounting; this class executes the *same* policies as
/// explicit messages through a discrete-event scheduler, the way deployed
/// peers would: query forwards, per-subtree state responses (fast-phase
/// subtrees convergecast their state bundles), and answer deliveries to
/// the initiator, each taking LatencyModel time on the wire.
///
/// Cross-validation contract (exercised by tests): for any query, overlay
/// and ripple parameter, the async execution produces exactly the same
/// answer, the same set of visited peers and the same message count as
/// the recursive engine; its completion time upper-bounds the engine's
/// forward-hop latency (responses ride the clock here, not in the
/// lemma-style accounting).
template <typename Overlay, typename Policy>
  requires QueryPolicy<Policy, typename Overlay::Area>
class AsyncEngine {
 public:
  using Area = typename Overlay::Area;
  using Query = typename Policy::Query;
  using LocalState = typename Policy::LocalState;
  using GlobalState = typename Policy::GlobalState;
  using Answer = typename Policy::Answer;

  AsyncEngine(const Overlay* overlay, Policy policy,
              LatencyModel latency = UnitLatency())
      : overlay_(overlay),
        policy_(std::move(policy)),
        latency_(std::move(latency)) {}

  struct RunResult {
    Answer answer{};
    QueryStats stats;
    /// Simulated time from query issue until the last event (final answer
    /// or state response) lands.
    double completion_time = 0;
  };

  /// Attaches a tracer recording one span per session, stamped with
  /// simulator time (so wire delays from the LatencyModel are visible in
  /// the trace). Same contract as Engine::SetTracer: nullptr disables,
  /// not owned, QueryStats are identical either way.
  void SetTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  RunResult Run(PeerId initiator, const Query& query, int r) const {
    return Run(initiator, query, r, policy_.InitialGlobalState(query));
  }

  RunResult Run(PeerId initiator, const Query& query, int r,
                GlobalState initial_state) const {
    Runtime rt(this, &query, initiator);
    // The initiator's root session has no parent.
    rt.StartSession(initiator, std::move(initial_state),
                    overlay_->FullArea(), r, /*parent=*/-1);
    rt.sim.Run();
    RIPPLE_CHECK(rt.open_sessions == 0 && "async run left dangling sessions");
    policy_.FinalizeAnswer(&rt.result.answer, query);
    rt.result.completion_time = rt.sim.now();
    return std::move(rt.result);
  }

 private:
  /// One activation of the per-peer procedure (each peer is activated at
  /// most once per query thanks to disjoint restriction areas, but the
  /// session abstraction does not rely on that).
  struct Session {
    PeerId peer = kInvalidPeer;
    GlobalState incoming{};   // S^G as received
    GlobalState global{};     // S^G_w, updated between iterations
    LocalState local{};       // S^L_w
    Area area{};
    int r = 0;
    int parent = -1;          // session index to respond to; -1 == root
    // Slow phase: prioritized candidates still to consider.
    struct Candidate {
      PeerId target;
      Area area;
      double priority;
    };
    std::vector<Candidate> pending;
    size_t next_candidate = 0;
    // Fast phase: responses still expected before this session closes.
    int outstanding_children = 0;
    // Fast phase: state bundle accumulated for the slow ancestor.
    std::vector<LocalState> bundle;
    bool fast = false;
    // Trace span of this session (kNoSpan when tracing is off).
    uint32_t span = obs::kNoSpan;
  };

  struct Runtime {
    Runtime(const AsyncEngine* engine, const Query* q, PeerId init)
        : self(engine), query(q), initiator(init) {}

    const AsyncEngine* self;
    const Query* query;
    PeerId initiator;
    EventSimulator sim;
    std::vector<Session> sessions;
    RunResult result;
    int open_sessions = 0;

    const Policy& policy() const { return self->policy_; }
    const Overlay& overlay() const { return *self->overlay_; }

    /// Delivers the query to `peer` (caller already charged the message).
    void StartSession(PeerId peer, GlobalState state, Area area, int r,
                      int parent) {
      const int id = static_cast<int>(sessions.size());
      sessions.push_back(Session{});
      Session& s = sessions[id];
      s.peer = peer;
      s.incoming = std::move(state);
      s.area = std::move(area);
      s.r = r;
      s.parent = parent;
      s.fast = r <= 0;
      ++open_sessions;
      result.stats.peers_visited += 1;
      if (obs::Tracer* tracer = self->tracer_) {
        const uint32_t parent_span =
            parent < 0 ? obs::kNoSpan : sessions[parent].span;
        s.span = tracer->StartSpan(
            peer, parent_span,
            s.fast ? obs::SpanKind::kFast : obs::SpanKind::kSlow, r,
            sim.now());
        tracer->span(s.span).tuples_in =
            policy().GlobalStateTupleCount(s.incoming);
      }

      const auto& node = overlay().GetPeer(peer);
      s.local = policy().ComputeLocalState(node.store, *query, s.incoming);
      s.global = policy().ComputeGlobalState(*query, s.incoming, s.local);

      if (s.fast) {
        // Algorithm 1 / Algorithm 3 second loop: forward everywhere at
        // once with the state snapshot.
        std::vector<std::pair<PeerId, Area>> targets;
        for (const auto& link : node.links) {
          Area restricted;
          if (!Overlay::IntersectArea(link.region, s.area, &restricted)) {
            continue;
          }
          if (!policy().IsLinkRelevant(*query, s.global, restricted)) {
            if (s.span != obs::kNoSpan) {
              self->tracer_->span(s.span).links_pruned += 1;
            }
            continue;
          }
          targets.emplace_back(link.target, std::move(restricted));
        }
        if (s.span != obs::kNoSpan) {
          self->tracer_->span(s.span).links_forwarded = targets.size();
        }
        s.outstanding_children = static_cast<int>(targets.size());
        for (auto& [target, restricted] : targets) {
          SendQuery(id, target, s.global, std::move(restricted), 0);
        }
        if (s.outstanding_children == 0) FinishSession(id);
      } else {
        // Algorithm 2 / Algorithm 3 first loop: prioritized, sequential.
        for (const auto& link : node.links) {
          Area restricted;
          if (!Overlay::IntersectArea(link.region, s.area, &restricted)) {
            continue;
          }
          const double priority =
              policy().LinkPriority(*query, restricted);
          s.pending.push_back(typename Session::Candidate{
              link.target, std::move(restricted), priority});
        }
        std::stable_sort(s.pending.begin(), s.pending.end(),
                         [](const auto& a, const auto& b) {
                           return a.priority > b.priority;
                         });
        AdvanceSlow(id);
      }
    }

    /// Slow phase: contact the next relevant candidate or finish.
    void AdvanceSlow(int id) {
      Session& s = sessions[id];
      while (s.next_candidate < s.pending.size()) {
        auto& c = s.pending[s.next_candidate++];
        if (!policy().IsLinkRelevant(*query, s.global, c.area)) {
          if (s.span != obs::kNoSpan) {
            self->tracer_->span(s.span).links_pruned += 1;
          }
          continue;
        }
        if (s.span != obs::kNoSpan) {
          self->tracer_->span(s.span).links_forwarded += 1;
        }
        SendQuery(id, c.target, s.global, std::move(c.area), s.r - 1);
        return;  // wait for the response
      }
      FinishSession(id);
    }

    void SendQuery(int from_session, PeerId target, GlobalState state,
                   Area area, int r) {
      result.stats.messages += 1;
      result.stats.tuples_shipped +=
          policy().GlobalStateTupleCount(state);
      const PeerId from = sessions[from_session].peer;
      self->sim_schedule(&sim, from, target,
                         [this, from_session, target,
                          state = std::move(state), area = std::move(area),
                          r]() mutable {
                           StartSession(target, std::move(state),
                                        std::move(area), r, from_session);
                         });
    }

    /// A child (or fast-subtree) responded with a bundle of local states.
    /// In the protocol, fast-phase peers address their states directly to
    /// the nearest slow ancestor u (Alg. 3 keeps forwarding u through the
    /// fast phase), so state messages are accounted exactly once — at the
    /// slow session that consumes them; the convergecast through fast
    /// sessions only exists for completion detection.
    void OnResponse(int id, std::vector<LocalState> bundle) {
      Session& s = sessions[id];
      if (!s.fast) {
        result.stats.messages += bundle.size();
        for (const LocalState& st : bundle) {
          result.stats.tuples_shipped += policy().StateTupleCount(st);
        }
      }
      if (s.fast) {
        for (LocalState& st : bundle) s.bundle.push_back(std::move(st));
        if (--s.outstanding_children == 0) FinishSession(id);
      } else {
        if (s.span != obs::kNoSpan) {
          self->tracer_->span(s.span).states_merged += bundle.size();
        }
        policy().MergeLocalStates(*query, &s.local, bundle);
        s.global =
            policy().ComputeGlobalState(*query, s.incoming, s.local);
        AdvanceSlow(id);
      }
    }

    /// Lines 12-13 / 19-21: report the state upward, ship the answer.
    void FinishSession(int id) {
      Session& s = sessions[id];
      // The final local state drives the answer extraction (fast sessions
      // never merged, so s.local is the line-1 state, as in Alg. 1).
      Answer answer = policy().ComputeLocalAnswer(
          overlay().GetPeer(s.peer).store, *query, s.local);
      const size_t tuples = policy().AnswerTupleCount(answer);
      if (tuples > 0) {
        result.stats.messages += 1;
        result.stats.tuples_shipped += tuples;
        // Answer delivery rides the clock but needs no handler state.
        self->sim_schedule(&sim, s.peer, initiator, [] {});
      }
      policy().MergeAnswer(&result.answer, std::move(answer), *query);
      if (s.span != obs::kNoSpan) {
        obs::Tracer* tracer = self->tracer_;
        obs::Span& sp = tracer->span(s.span);
        sp.state_tuples = policy().StateTupleCount(s.local);
        sp.answer_tuples = tuples;
        tracer->EndSpan(s.span, sim.now());
      }

      std::vector<LocalState> bundle;
      if (s.fast) {
        bundle = std::move(s.bundle);
        bundle.push_back(s.local);
      } else {
        bundle.push_back(s.local);
      }
      const int parent = s.parent;
      const PeerId peer = s.peer;
      --open_sessions;
      if (parent >= 0) {
        self->sim_schedule(&sim, peer, sessions[parent].peer,
                           [this, parent,
                            bundle = std::move(bundle)]() mutable {
                             OnResponse(parent, std::move(bundle));
                           });
      }
    }
  };

  void sim_schedule(EventSimulator* sim, PeerId from, PeerId to,
                    std::function<void()> fn) const {
    sim->Schedule(latency_(from, to), std::move(fn));
  }

  const Overlay* overlay_;
  Policy policy_;
  LatencyModel latency_;
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace ripple

#endif  // RIPPLE_SIM_ASYNC_ENGINE_H_
