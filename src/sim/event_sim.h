#ifndef RIPPLE_SIM_EVENT_SIM_H_
#define RIPPLE_SIM_EVENT_SIM_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ripple {

/// A minimal discrete-event scheduler: events fire in timestamp order
/// (FIFO among ties), each event is an arbitrary callback, and the clock
/// only moves when events fire. Deterministic given deterministic
/// callbacks.
class EventSimulator {
 public:
  using Clock = double;

  Clock now() const { return now_; }
  size_t events_processed() const { return processed_; }

  /// Schedules `fn` to run `delay` time units from now (delay >= 0).
  void Schedule(Clock delay, std::function<void()> fn) {
    RIPPLE_CHECK(delay >= 0);
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  /// Runs events until the queue drains. Returns the final clock value.
  Clock Run() {
    while (!queue_.empty()) {
      Event e = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      RIPPLE_DCHECK(e.at >= now_);
      now_ = e.at;
      ++processed_;
      e.fn();
    }
    return now_;
  }

 private:
  struct Event {
    Clock at;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Clock now_ = 0;
  uint64_t next_seq_ = 0;
  size_t processed_ = 0;
};

}  // namespace ripple

#endif  // RIPPLE_SIM_EVENT_SIM_H_
