#ifndef RIPPLE_SIM_EVENT_SIM_H_
#define RIPPLE_SIM_EVENT_SIM_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/check.h"

namespace ripple {

/// A minimal discrete-event scheduler: events fire in timestamp order
/// (FIFO among ties), each event is an arbitrary callback, and the clock
/// only moves when events fire. Deterministic given deterministic
/// callbacks.
class EventSimulator {
 public:
  using Clock = double;

  Clock now() const { return now_; }
  size_t events_processed() const { return processed_; }

  /// Schedules `fn` to run `delay` time units from now (delay >= 0).
  void Schedule(Clock delay, std::function<void()> fn) {
    RIPPLE_CHECK(delay >= 0);
    queue_.push(Event{now_ + delay, next_seq_++, std::move(fn)});
  }

  /// Runs events until the queue drains or Stop() is called. Returns the
  /// final clock value.
  Clock Run() {
    stopped_ = false;
    while (!queue_.empty() && !stopped_) {
      Event e = std::move(const_cast<Event&>(queue_.top()));
      queue_.pop();
      RIPPLE_DCHECK(e.at >= now_);
      now_ = e.at;
      ++processed_;
      e.fn();
    }
    return now_;
  }

  /// Ends the current Run() after the in-flight event returns; pending
  /// events stay queued (a later Run() would resume them). Used by the
  /// async engine once the root query completed — any surviving events are
  /// lapsed retry timers with nothing left to do.
  void Stop() { stopped_ = true; }
  bool stopped() const { return stopped_; }

 private:
  struct Event {
    Clock at;
    uint64_t seq;
    std::function<void()> fn;
    bool operator>(const Event& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  Clock now_ = 0;
  uint64_t next_seq_ = 0;
  size_t processed_ = 0;
  bool stopped_ = false;
};

/// Cancellable timers on top of EventSimulator, the way a kernel timer
/// wheel exposes them: Arm() returns a handle, Cancel() revokes it, firing
/// consumes it. Cancellation is lazy — the underlying event still pops at
/// its timestamp but finds its handle dead and does nothing — so Cancel is
/// O(1) and the scheduler needs no queue surgery.
class TimerWheel {
 public:
  /// The simulator must outlive the wheel.
  explicit TimerWheel(EventSimulator* sim) : sim_(sim) {}

  /// Arms a one-shot timer `delay` units from now.
  uint64_t Arm(double delay, std::function<void()> fn) {
    const uint64_t id = next_id_++;
    live_.insert(id);
    sim_->Schedule(delay, [this, id, fn = std::move(fn)] {
      if (live_.erase(id) == 0) return;  // cancelled
      fn();
    });
    return id;
  }

  /// Revokes a timer; firing and double-cancel are harmless no-ops.
  void Cancel(uint64_t id) { live_.erase(id); }

  /// Timers armed and neither fired nor cancelled yet.
  size_t armed() const { return live_.size(); }

 private:
  EventSimulator* sim_;
  std::unordered_set<uint64_t> live_;
  uint64_t next_id_ = 1;
};

}  // namespace ripple

#endif  // RIPPLE_SIM_EVENT_SIM_H_
