#ifndef RIPPLE_SIM_SESSION_H_
#define RIPPLE_SIM_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/check.h"
#include "obs/trace.h"
#include "overlay/types.h"

namespace ripple {

/// Session indices are small ints; the root session has no parent.
inline constexpr int kNoSession = -1;
/// Message-id space for query forwards; the root session was spawned by
/// no request.
inline constexpr int64_t kNoRequest = -1;

/// One activation of the per-peer RIPPLE procedure inside the async
/// engine (each peer is activated at most once per query thanks to
/// disjoint restriction areas and the dedup windows).
///
/// The session owns its *decoded* query: every message crosses an
/// encode/decode boundary (docs/WIRE.md), so policy calls at this peer run
/// on what actually came off the wire, not on the initiator's in-memory
/// request. The root session copies the request's query directly.
template <typename Policy, typename Area>
struct Session {
  using Query = typename Policy::Query;
  using LocalState = typename Policy::LocalState;
  using GlobalState = typename Policy::GlobalState;

  PeerId peer = kInvalidPeer;
  Query query{};            // Q as decoded at this peer
  GlobalState incoming{};   // S^G as received
  GlobalState global{};     // S^G_w, updated between iterations
  LocalState local{};       // S^L_w
  Area area{};
  int r = 0;
  int parent = kNoSession;  // session index to respond to; -1 == root
  int64_t origin_req = kNoRequest;  // request id that spawned us

  // Slow phase: prioritized candidates still to consider.
  struct Candidate {
    PeerId target;
    Area area;
    double priority;
  };
  std::vector<Candidate> pending;
  size_t next_candidate = 0;

  // Fast phase: responses still expected before this session closes.
  int outstanding_children = 0;
  // Fast phase: state bundle accumulated for the slow ancestor.
  std::vector<LocalState> bundle;
  bool fast = false;
  bool finished = false;

  // Reply cache: the encoded response datagram this session reported
  // (one frame per state, docs/WIRE.md), kept so a retransmitted query
  // can be answered byte-identically without re-execution.
  // `response_parts` mirrors the datagram frame by frame with the sizes
  // and tuple counts the accounting charges per (re)transmission.
  struct ResponsePart {
    size_t bytes = 0;
    uint64_t tuples = 0;
  };
  std::vector<uint8_t> response_frame;
  std::vector<ResponsePart> response_parts;

  // Trace span of this session (kNoSpan when tracing is off).
  uint32_t span = obs::kNoSpan;
};

/// The async engine's session bookkeeping: a dense table indexed by
/// session id, plus the open-session count termination rides on.
/// Create() may reallocate — references into the table follow the same
/// rule as any vector: re-index after anything that can open a session.
template <typename Policy, typename Area>
class SessionTable {
 public:
  using Session = ripple::Session<Policy, Area>;

  /// Opens a new session and returns its id.
  int Create() {
    sessions_.emplace_back();
    ++open_;
    return static_cast<int>(sessions_.size()) - 1;
  }

  /// Closes an open session (it stays addressable; its reply cache and
  /// `finished` flag keep serving retransmitted queries).
  void Close(int id) {
    RIPPLE_CHECK(!sessions_[id].finished && "session closed twice");
    sessions_[id].finished = true;
    --open_;
  }

  Session& operator[](int id) { return sessions_[id]; }
  const Session& operator[](int id) const { return sessions_[id]; }
  size_t size() const { return sessions_.size(); }
  int open() const { return open_; }

 private:
  std::vector<Session> sessions_;
  int open_ = 0;
};

}  // namespace ripple

#endif  // RIPPLE_SIM_SESSION_H_
