#include "sim/fault_model.h"

#include <limits>

namespace ripple {

namespace {

/// splitmix64 finalizer — a cheap, well-mixed stateless hash.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double HashU01(uint64_t x) {
  return static_cast<double>(Mix(x) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultModel::FaultModel(const net::FaultOptions& options, PeerId protected_peer)
    : options_(options),
      protected_peer_(protected_peer),
      rng_(options.seed * 0x9e3779b97f4a7c15ULL + 0x2545F4914F6CDD1DULL) {
  for (const net::CrashEvent& c : options_.crashes) {
    explicit_crashes_.emplace(c.peer, c.at);
  }
}

bool FaultModel::DropMessage() {
  if (options_.loss_rate <= 0) return false;
  return rng_.Bernoulli(options_.loss_rate);
}

bool FaultModel::DuplicateMessage() {
  if (options_.dup_rate <= 0) return false;
  return rng_.Bernoulli(options_.dup_rate);
}

double FaultModel::Jitter(double delay) {
  if (options_.delay_jitter <= 0) return delay;
  return delay * (1.0 + rng_.UniformDouble() * options_.delay_jitter);
}

double FaultModel::CrashTimeOf(PeerId peer) const {
  if (peer == protected_peer_) {
    return std::numeric_limits<double>::infinity();
  }
  auto it = explicit_crashes_.find(peer);
  if (it != explicit_crashes_.end()) return it->second;
  if (options_.crash_rate <= 0) {
    return std::numeric_limits<double>::infinity();
  }
  // Two independent hashes of (seed, peer): one decides *whether* the peer
  // crashes, the other *when* within the window.
  const uint64_t base = Mix(options_.seed) ^ (uint64_t{peer} << 1);
  if (HashU01(base) >= options_.crash_rate) {
    return std::numeric_limits<double>::infinity();
  }
  return HashU01(base ^ 0xD6E8FEB86659FD93ULL) * options_.crash_window;
}

}  // namespace ripple
