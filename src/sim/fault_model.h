#ifndef RIPPLE_SIM_FAULT_MODEL_H_
#define RIPPLE_SIM_FAULT_MODEL_H_

#include <unordered_map>

#include "common/rng.h"
#include "net/fault.h"
#include "overlay/types.h"

namespace ripple {

/// Deterministic fault injector for the discrete-event network: decides,
/// from one seeded stream, whether a transmission is lost or duplicated,
/// how much extra delay it suffers, and when (if ever) each peer crashes.
///
/// Determinism has two layers. Per-message draws (loss/dup/jitter) come
/// from a sequential xoshiro stream, so they depend on the message order —
/// which the EventSimulator makes deterministic. Per-peer crash times are
/// *order-free*: they hash the peer id against the seed, so peer p crashes
/// at the same time no matter how the query reaches it. Explicit
/// CrashEvents in the options override the hashed draw for their peer.
class FaultModel {
 public:
  FaultModel(const net::FaultOptions& options, PeerId protected_peer);

  /// True when the next transmission should be dropped (draws the stream).
  bool DropMessage();
  /// True when a delivered message should arrive a second time.
  bool DuplicateMessage();
  /// Applies delay jitter: delay * uniform[1, 1 + delay_jitter].
  double Jitter(double delay);

  /// The time `peer` crashes, or +infinity if it never does. The protected
  /// peer (the query initiator) never crashes.
  double CrashTimeOf(PeerId peer) const;
  bool CrashedAt(PeerId peer, double now) const {
    return CrashTimeOf(peer) <= now;
  }

  const net::FaultOptions& options() const { return options_; }

 private:
  net::FaultOptions options_;
  PeerId protected_peer_;
  Rng rng_;
  std::unordered_map<PeerId, double> explicit_crashes_;
};

}  // namespace ripple

#endif  // RIPPLE_SIM_FAULT_MODEL_H_
