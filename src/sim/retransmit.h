#ifndef RIPPLE_SIM_RETRANSMIT_H_
#define RIPPLE_SIM_RETRANSMIT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/fault.h"
#include "overlay/types.h"
#include "sim/session.h"

namespace ripple {

/// One logical query forward awaiting a response. Retransmissions reuse
/// the entry (and its message id) and reship `frame` — the encoded wire
/// frame of the first attempt — so every copy is byte-identical and
/// receiver-side dedup-by-id is sound. Snapshotting bytes instead of
/// typed (state, area) copies is also what makes this struct independent
/// of the engine's template parameters.
struct PendingRequest {
  int requester = kNoSession;  // session waiting for the response
  PeerId from = kInvalidPeer;
  PeerId target = kInvalidPeer;
  std::vector<uint8_t> frame;  // encoded query frame (byte snapshot)
  uint64_t tuples = 0;         // global-state tuples charged per attempt
  int attempt = 0;             // transmissions so far
  int strikes = 0;             // consecutive timeouts without response/ack
  double timeout = 0;          // current (backed-off) patience
  bool resolved = false;       // response consumed, or given up
  bool failed = false;         // given up after the retry budget
  uint64_t timer = 0;          // live TimerWheel handle
};

/// One answer delivery to the initiator, with sender-side retransmission
/// on loss or corruption (the answer channel models a reliable transport
/// whose acks/nacks are elided from the accounting; retransmissions are
/// not). Same byte-snapshot discipline as PendingRequest. The sender
/// cannot observe a swallowed or rejected datagram through the
/// fire-and-forget transport, so every transmission arms a watchdog
/// timer; successful delivery cancels it, anything else retransmits when
/// it fires.
struct PendingAnswer {
  PeerId from = kInvalidPeer;
  std::vector<uint8_t> frame;  // encoded answer frame (byte snapshot)
  size_t tuples = 0;
  int attempt = 0;
  bool settled = false;  // delivered once, or lost for good
  uint64_t timer = 0;    // live watchdog TimerWheel handle
  // Trace span of the sending session, stamped into every copy's frame
  // header (kNoSpan when tracing is off).
  uint32_t span = obs::kNoSpan;
};

/// The retry discipline's capped exponential backoff.
inline double BackedOffTimeout(double current, const net::RetryOptions& r) {
  return std::min(current * r.backoff, r.timeout_cap);
}

}  // namespace ripple

#endif  // RIPPLE_SIM_RETRANSMIT_H_
