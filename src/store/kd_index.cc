#include "store/kd_index.h"

namespace ripple {

void KdIndex::Build(TupleVec tuples) {
  tuples_ = std::move(tuples);
  nodes_.clear();
  if (tuples_.empty()) return;
  nodes_.reserve(2 * tuples_.size() / kLeafSize + 2);
  const int root = BuildRec(0, static_cast<uint32_t>(tuples_.size()), 0);
  RIPPLE_CHECK(root == kRoot);
}

Rect KdIndex::BoundsOf(uint32_t begin, uint32_t end) const {
  Point lo = tuples_[begin].key;
  Point hi = tuples_[begin].key;
  for (uint32_t i = begin + 1; i < end; ++i) {
    const Point& p = tuples_[i].key;
    for (int d = 0; d < p.dims(); ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  return Rect(lo, hi);
}

int KdIndex::BuildRec(uint32_t begin, uint32_t end, int depth) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[index].bounds = BoundsOf(begin, end);
  if (end - begin <= kLeafSize) {
    nodes_[index].begin = begin;
    nodes_[index].end = end;
    return index;
  }
  // Split along the widest dimension of the bounding rect at the median.
  const Rect& b = nodes_[index].bounds;
  int dim = depth % tuples_[begin].key.dims();
  double widest = -1.0;
  for (int d = 0; d < b.dims(); ++d) {
    const double w = b.hi()[d] - b.lo()[d];
    if (w > widest) {
      widest = w;
      dim = d;
    }
  }
  const uint32_t mid = (begin + end) / 2;
  std::nth_element(tuples_.begin() + begin, tuples_.begin() + mid,
                   tuples_.begin() + end,
                   [dim](const Tuple& a, const Tuple& b2) {
                     return a.key[dim] < b2.key[dim];
                   });
  const int left = BuildRec(begin, mid, depth + 1);
  const int right = BuildRec(mid, end, depth + 1);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

}  // namespace ripple
