#include "store/kd_index.h"

#include <numeric>

namespace ripple {

void KdIndex::Build(const TupleVec& tuples) {
  store::FlatStore flat;
  flat.AppendAll(tuples);
  Build(flat);
}

void KdIndex::Build(const store::FlatStore& src) {
  nodes_.clear();
  rows_.Clear();
  if (src.empty()) return;
  const uint32_t n = static_cast<uint32_t>(src.size());
  // The tree is built over a row permutation (nth_element moves 4-byte
  // indices, not tuples); the columns are gathered into tree order once
  // at the end, so every leaf owns a contiguous slice of each column.
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  nodes_.reserve(2 * src.size() / kLeafSize + 2);
  const int root = BuildRec(src, &perm, 0, n, 0);
  RIPPLE_CHECK(root == kRoot);
  rows_ = src.Permuted(perm);
}

Rect KdIndex::BoundsOf(const store::FlatStore& src,
                       const std::vector<uint32_t>& perm, uint32_t begin,
                       uint32_t end) const {
  Point lo = src.PointAt(perm[begin]);
  Point hi = lo;
  for (uint32_t i = begin + 1; i < end; ++i) {
    for (int d = 0; d < src.dims(); ++d) {
      const double v = src.col(d)[perm[i]];
      lo[d] = std::min(lo[d], v);
      hi[d] = std::max(hi[d], v);
    }
  }
  return Rect(lo, hi);
}

int KdIndex::BuildRec(const store::FlatStore& src,
                      std::vector<uint32_t>* perm, uint32_t begin,
                      uint32_t end, int depth) {
  const int index = static_cast<int>(nodes_.size());
  nodes_.emplace_back();
  nodes_[index].bounds = BoundsOf(src, *perm, begin, end);
  if (end - begin <= kLeafSize) {
    nodes_[index].begin = begin;
    nodes_[index].end = end;
    return index;
  }
  // Split along the widest dimension of the bounding rect at the median.
  const Rect& b = nodes_[index].bounds;
  int dim = depth % src.dims();
  double widest = -1.0;
  for (int d = 0; d < b.dims(); ++d) {
    const double w = b.hi()[d] - b.lo()[d];
    if (w > widest) {
      widest = w;
      dim = d;
    }
  }
  const uint32_t mid = (begin + end) / 2;
  const double* coord = src.col(dim);
  std::nth_element(perm->begin() + begin, perm->begin() + mid,
                   perm->begin() + end,
                   [coord](uint32_t a, uint32_t b2) {
                     return coord[a] < coord[b2];
                   });
  const int left = BuildRec(src, perm, begin, mid, depth + 1);
  const int right = BuildRec(src, perm, mid, end, depth + 1);
  nodes_[index].left = left;
  nodes_[index].right = right;
  return index;
}

}  // namespace ripple
