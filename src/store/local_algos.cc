#include "store/local_algos.h"

#include <algorithm>
#include <numeric>

#include "common/arena.h"
#include "geom/dominance.h"

namespace ripple {

namespace {

/// Coordinate sum with the accumulation order every caller shares
/// (dimension-ascending adds), so precomputed sums compare exactly like
/// sums recomputed inside a comparator.
double SumOf(const Tuple& t) {
  double s = 0.0;
  for (int i = 0; i < t.key.dims(); ++i) s += t.key[i];
  return s;
}

/// Drops duplicate ids (merged states may repeat tuples) and returns the
/// remaining tuples in ascending-sum order — the shared preamble of both
/// skyline implementations. Sorting an index permutation by precomputed
/// sums is stable, so the order is identical to stable_sorting the tuples
/// with an on-the-fly sum comparator.
TupleVec DedupAndSumSort(TupleVec tuples) {
  std::sort(tuples.begin(), tuples.end(), TupleIdLess());
  tuples.erase(std::unique(tuples.begin(), tuples.end(),
                           [](const Tuple& a, const Tuple& b) {
                             return a.id == b.id;
                           }),
               tuples.end());
  std::vector<double> sums(tuples.size());
  for (size_t i = 0; i < tuples.size(); ++i) sums[i] = SumOf(tuples[i]);
  std::vector<uint32_t> order(tuples.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(),
                   [&](uint32_t a, uint32_t b) { return sums[a] < sums[b]; });
  // Apply the permutation in place (cycle-walking, O(n) moves): same
  // result as rebuilding `sorted[i] = tuples[order[i]]` without a second
  // tuple buffer.
  for (uint32_t i = 0; i < order.size(); ++i) {
    if (order[i] == i) continue;
    Tuple tmp = std::move(tuples[i]);
    uint32_t cur = i;
    while (order[cur] != i) {
      const uint32_t nxt = order[cur];
      tuples[cur] = std::move(tuples[nxt]);
      order[cur] = cur;
      cur = nxt;
    }
    tuples[cur] = std::move(tmp);
    order[cur] = cur;
  }
  return tuples;
}

/// A growable structure-of-arrays view over the running skyline, backed
/// by the per-query arena: d column arrays sized for the worst case
/// (every candidate survives), appended to as candidates are accepted.
class ArenaColumns {
 public:
  ArenaColumns(Arena* arena, int dims, size_t capacity) : dims_(dims) {
    for (int c = 0; c < dims; ++c) {
      cols_[c] = arena->AllocateArray<double>(capacity);
    }
  }

  void Append(const Point& p) {
    for (int c = 0; c < dims_; ++c) cols_[c][size_] = p[c];
    ++size_;
  }

  const double* const* cols() const { return cols_; }
  size_t size() const { return size_; }

 private:
  int dims_;
  size_t size_ = 0;
  double* cols_[kMaxDims] = {};
};

}  // namespace

TupleVec ComputeSkyline(TupleVec tuples) {
  if (tuples.empty()) return tuples;
  TupleVec sorted = DedupAndSumSort(std::move(tuples));
  const int dims = sorted[0].key.dims();
  // A tuple can only be dominated by tuples with a strictly smaller
  // coordinate sum, so one forward pass against the running skyline —
  // held column-wise for the branch-free kernel — suffices.
  Arena& arena = PerQueryArena();
  ArenaScope scope(&arena);
  ArenaColumns sky_cols(&arena, dims, sorted.size());
  TupleVec sky;
  KernelCounters& kc = LocalKernelCounters();
  for (Tuple& t : sorted) {
    ++kc.tuples_scanned;
    if (AnyDominatesColumns(sky_cols.cols(), dims, sky_cols.size(), t.key)) {
      continue;
    }
    sky_cols.Append(t.key);
    sky.push_back(std::move(t));
  }
  std::sort(sky.begin(), sky.end(), TupleIdLess());
  return sky;
}

TupleVec ComputeSkylineScalar(TupleVec tuples) {
  if (tuples.empty()) return tuples;
  // Drop duplicates by id first (merged states may repeat tuples).
  std::sort(tuples.begin(), tuples.end(), TupleIdLess());
  tuples.erase(std::unique(tuples.begin(), tuples.end(),
                           [](const Tuple& a, const Tuple& b) {
                             return a.id == b.id;
                           }),
               tuples.end());
  // Sort by coordinate sum: a tuple can only be dominated by tuples with a
  // strictly smaller sum, so a single forward pass against the running
  // skyline suffices.
  std::stable_sort(tuples.begin(), tuples.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return SumOf(a) < SumOf(b);
                   });
  TupleVec sky;
  for (const Tuple& t : tuples) {
    bool dominated = false;
    for (const Tuple& s : sky) {
      if (Dominates(s.key, t.key)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) sky.push_back(t);
  }
  std::sort(sky.begin(), sky.end(), TupleIdLess());
  return sky;
}

TupleVec SelectDominators(const TupleVec& sky, size_t max_count) {
  if (sky.size() <= max_count) return sky;
  // Precompute the sums once and select over an index permutation: the
  // comparator sees the exact values the scalar on-the-fly version
  // compared, so the selected set is unchanged.
  std::vector<double> sums(sky.size());
  for (size_t i = 0; i < sky.size(); ++i) sums[i] = SumOf(sky[i]);
  std::vector<uint32_t> order(sky.size());
  std::iota(order.begin(), order.end(), 0);
  std::nth_element(order.begin(), order.begin() + max_count, order.end(),
                   [&](uint32_t a, uint32_t b) { return sums[a] < sums[b]; });
  TupleVec out;
  out.reserve(max_count);
  for (size_t i = 0; i < max_count; ++i) out.push_back(sky[order[i]]);
  return out;
}

TupleVec MergeSkylines(TupleVec a, const TupleVec& b) {
  if (b.empty()) {
    std::sort(a.begin(), a.end(), TupleIdLess());
    return a;
  }
  if (a.empty()) {
    TupleVec out = b;
    std::sort(out.begin(), out.end(), TupleIdLess());
    return out;
  }
  const int dims = a[0].key.dims();
  Arena& arena = PerQueryArena();
  ArenaScope scope(&arena);
  ArenaColumns b_cols(&arena, dims, b.size());
  for (const Tuple& t : b) b_cols.Append(t.key);
  KernelCounters& kc = LocalKernelCounters();
  // Survivors of a: not dominated by any b tuple.
  TupleVec out;
  out.reserve(a.size() + b.size());
  for (Tuple& t : a) {
    ++kc.tuples_scanned;
    if (!AnyDominatesColumns(b_cols.cols(), dims, b_cols.size(), t.key)) {
      out.push_back(std::move(t));
    }
  }
  const size_t a_survivors = out.size();
  // Survivors of b: not dominated by any a tuple. (Testing against all of
  // a equals testing against a's survivors: if a removed a-tuple s
  // dominated t in b, then s's own b-dominator would dominate t by
  // transitivity — impossible, b is mutually non-dominated.) Ids already
  // kept in the a-pass are skipped; duplicated tuples always survive the
  // a-pass, since nothing in b dominates a tuple b itself contains.
  ArenaColumns a_cols(&arena, dims, a.size());
  for (const Tuple& t : a) a_cols.Append(t.key);
  for (const Tuple& t : b) {
    bool skip = false;
    for (size_t i = 0; i < a_survivors; ++i) {
      if (out[i].id == t.id) {
        skip = true;
        break;
      }
    }
    if (skip) continue;
    ++kc.tuples_scanned;
    if (!AnyDominatesColumns(a_cols.cols(), dims, a_cols.size(), t.key)) {
      out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end(), TupleIdLess());
  return out;
}

TupleVec MergeSkylinesScalar(TupleVec a, const TupleVec& b) {
  if (b.empty()) {
    std::sort(a.begin(), a.end(), TupleIdLess());
    return a;
  }
  if (a.empty()) {
    TupleVec out = b;
    std::sort(out.begin(), out.end(), TupleIdLess());
    return out;
  }
  TupleVec out;
  out.reserve(a.size() + b.size());
  for (const Tuple& t : a) {
    bool dominated = false;
    for (const Tuple& s : b) {
      if (Dominates(s.key, t.key)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(t);
  }
  const size_t a_survivors = out.size();
  for (const Tuple& t : b) {
    bool skip = false;
    for (size_t i = 0; i < a_survivors; ++i) {
      if (out[i].id == t.id) {
        skip = true;
        break;
      }
    }
    if (skip) continue;
    bool dominated = false;
    for (const Tuple& s : a) {
      if (Dominates(s.key, t.key)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(t);
  }
  std::sort(out.begin(), out.end(), TupleIdLess());
  return out;
}

}  // namespace ripple
