#include "store/local_algos.h"

#include <algorithm>

#include "geom/dominance.h"

namespace ripple {

TupleVec ComputeSkyline(TupleVec tuples) {
  if (tuples.empty()) return tuples;
  // Drop duplicates by id first (merged states may repeat tuples).
  std::sort(tuples.begin(), tuples.end(), TupleIdLess());
  tuples.erase(std::unique(tuples.begin(), tuples.end(),
                           [](const Tuple& a, const Tuple& b) {
                             return a.id == b.id;
                           }),
               tuples.end());
  // Sort by coordinate sum: a tuple can only be dominated by tuples with a
  // strictly smaller sum, so a single forward pass against the running
  // skyline suffices.
  auto sum_of = [](const Tuple& t) {
    double s = 0.0;
    for (int i = 0; i < t.key.dims(); ++i) s += t.key[i];
    return s;
  };
  std::stable_sort(tuples.begin(), tuples.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return sum_of(a) < sum_of(b);
                   });
  TupleVec sky;
  for (const Tuple& t : tuples) {
    bool dominated = false;
    for (const Tuple& s : sky) {
      if (Dominates(s.key, t.key)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) sky.push_back(t);
  }
  std::sort(sky.begin(), sky.end(), TupleIdLess());
  return sky;
}

TupleVec SelectDominators(const TupleVec& sky, size_t max_count) {
  if (sky.size() <= max_count) return sky;
  auto sum_of = [](const Tuple& t) {
    double s = 0.0;
    for (int i = 0; i < t.key.dims(); ++i) s += t.key[i];
    return s;
  };
  TupleVec out = sky;
  std::nth_element(out.begin(), out.begin() + max_count, out.end(),
                   [&](const Tuple& a, const Tuple& b) {
                     return sum_of(a) < sum_of(b);
                   });
  out.resize(max_count);
  return out;
}

TupleVec MergeSkylines(TupleVec a, const TupleVec& b) {
  if (b.empty()) {
    std::sort(a.begin(), a.end(), TupleIdLess());
    return a;
  }
  if (a.empty()) {
    TupleVec out = b;
    std::sort(out.begin(), out.end(), TupleIdLess());
    return out;
  }
  // Survivors of a: not dominated by any b tuple.
  TupleVec out;
  out.reserve(a.size() + b.size());
  for (const Tuple& t : a) {
    bool dominated = false;
    for (const Tuple& s : b) {
      if (Dominates(s.key, t.key)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(t);
  }
  const size_t a_survivors = out.size();
  // Survivors of b: not dominated by any a tuple. (Testing against all of
  // a equals testing against a's survivors: if a removed a-tuple s
  // dominated t in b, then s's own b-dominator would dominate t by
  // transitivity — impossible, b is mutually non-dominated.) Ids already
  // kept in the a-pass are skipped; duplicated tuples always survive the
  // a-pass, since nothing in b dominates a tuple b itself contains.
  for (const Tuple& t : b) {
    bool skip = false;
    for (size_t i = 0; i < a_survivors; ++i) {
      if (out[i].id == t.id) {
        skip = true;
        break;
      }
    }
    if (skip) continue;
    bool dominated = false;
    for (const Tuple& s : a) {
      if (Dominates(s.key, t.key)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) out.push_back(t);
  }
  std::sort(out.begin(), out.end(), TupleIdLess());
  return out;
}

}  // namespace ripple
