#ifndef RIPPLE_STORE_LOCAL_ALGOS_H_
#define RIPPLE_STORE_LOCAL_ALGOS_H_

#include <algorithm>

#include "common/kernel_counters.h"
#include "store/bounded_topk.h"
#include "store/tuple.h"

namespace ripple {

/// Computes the skyline (maximal set under Pareto dominance, min-is-better)
/// of a set of tuples. Deterministic: the result is sorted by tuple id.
/// Duplicate tuple ids are collapsed to one occurrence.
///
/// This is the centralized `computeSkyline` primitive the paper's skyline
/// state functions rely on (Algorithms 10, 11, 13), also used as the oracle
/// in tests. O(n log n + n * s) where s is the skyline size. Internally the
/// candidate pass runs the column-wise dominance kernel
/// (AnyDominatesColumns) over a structure-of-arrays copy of the running
/// skyline; ComputeSkylineScalar is the retained row-at-a-time oracle and
/// returns byte-identical results.
TupleVec ComputeSkyline(TupleVec tuples);

/// The pre-SoA scalar implementation, kept as the parity oracle for tests
/// and the bench_fig_kernels before/after panel.
TupleVec ComputeSkylineScalar(TupleVec tuples);

/// Merges two sets that are EACH already skylines (mutually non-dominated
/// within themselves) into the skyline of their union, using only
/// cross-dominance checks — O(|a| * |b|) instead of re-running the full
/// computation over the union. Tuples present in both inputs (by id) are
/// kept once. Result sorted by id. This is the work-horse of distributed
/// skyline state maintenance, where every incoming state is itself a
/// skyline; at d >= 8, where skylines span half the dataset, the full
/// recomputation would be quadratic in the data size per peer. The
/// cross-dominance passes run the column-wise kernel; MergeSkylinesScalar
/// is the retained oracle.
TupleVec MergeSkylines(TupleVec a, const TupleVec& b);

/// The pre-SoA scalar implementation, kept as the parity oracle.
TupleVec MergeSkylinesScalar(TupleVec a, const TupleVec& b);

/// Selects up to `max_count` tuples with the smallest coordinate sums —
/// the only candidates able to dominate whole regions. Used to bound the
/// per-link dominance tests of the distributed skyline methods; pruning
/// with a subset is sound (never prunes more than the full set would).
TupleVec SelectDominators(const TupleVec& sky, size_t max_count);

/// Returns the k highest scoring tuples under `score_of` (higher first),
/// deterministic tie-break by id. Used as the centralized top-k oracle.
/// Runs a bounded branch-light queue (store::BoundedTopK) over the
/// candidates instead of copy-and-full-sort; SelectTopKScalar is the
/// retained partial_sort oracle and returns byte-identical results.
template <typename ScoreFn>
TupleVec SelectTopK(TupleVec tuples, const ScoreFn& score_of, size_t k);

/// The pre-SoA partial_sort implementation, kept as the parity oracle.
template <typename ScoreFn>
TupleVec SelectTopKScalar(TupleVec tuples, const ScoreFn& score_of, size_t k);

// ---------------------------------------------------------------------------
// Implementation details only below here.
// ---------------------------------------------------------------------------

template <typename ScoreFn>
TupleVec SelectTopK(TupleVec tuples, const ScoreFn& score_of, size_t k) {
  if (k == 0 || tuples.empty()) return {};
  store::BoundedTopK queue(k);
  LocalKernelCounters().tuples_scanned += tuples.size();
  for (size_t i = 0; i < tuples.size(); ++i) {
    queue.Insert(score_of(tuples[i].key), tuples[i].id,
                 static_cast<uint32_t>(i));
  }
  TupleVec out;
  out.reserve(queue.size());
  for (const store::BoundedTopK::Entry& e : queue.SortedDescending()) {
    out.push_back(std::move(tuples[e.payload]));
  }
  return out;
}

template <typename ScoreFn>
TupleVec SelectTopKScalar(TupleVec tuples, const ScoreFn& score_of,
                          size_t k) {
  auto better = [&](const Tuple& a, const Tuple& b) {
    const double sa = score_of(a.key), sb = score_of(b.key);
    if (sa != sb) return sa > sb;
    return a.id < b.id;
  };
  if (tuples.size() > k) {
    std::partial_sort(tuples.begin(), tuples.begin() + k, tuples.end(),
                      better);
    tuples.resize(k);
  } else {
    std::sort(tuples.begin(), tuples.end(), better);
  }
  return tuples;
}

}  // namespace ripple

#endif  // RIPPLE_STORE_LOCAL_ALGOS_H_
