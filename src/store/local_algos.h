#ifndef RIPPLE_STORE_LOCAL_ALGOS_H_
#define RIPPLE_STORE_LOCAL_ALGOS_H_

#include <algorithm>

#include "store/tuple.h"

namespace ripple {

/// Computes the skyline (maximal set under Pareto dominance, min-is-better)
/// of a set of tuples. Deterministic: the result is sorted by tuple id.
/// Duplicate tuple ids are collapsed to one occurrence.
///
/// This is the centralized `computeSkyline` primitive the paper's skyline
/// state functions rely on (Algorithms 10, 11, 13), also used as the oracle
/// in tests. O(n log n + n * s) where s is the skyline size.
TupleVec ComputeSkyline(TupleVec tuples);

/// Merges two sets that are EACH already skylines (mutually non-dominated
/// within themselves) into the skyline of their union, using only
/// cross-dominance checks — O(|a| * |b|) instead of re-running the full
/// computation over the union. Tuples present in both inputs (by id) are
/// kept once. Result sorted by id. This is the work-horse of distributed
/// skyline state maintenance, where every incoming state is itself a
/// skyline; at d >= 8, where skylines span half the dataset, the full
/// recomputation would be quadratic in the data size per peer.
TupleVec MergeSkylines(TupleVec a, const TupleVec& b);

/// Selects up to `max_count` tuples with the smallest coordinate sums —
/// the only candidates able to dominate whole regions. Used to bound the
/// per-link dominance tests of the distributed skyline methods; pruning
/// with a subset is sound (never prunes more than the full set would).
TupleVec SelectDominators(const TupleVec& sky, size_t max_count);

/// Returns the k highest scoring tuples under `score_of` (higher first),
/// deterministic tie-break by id. Used as the centralized top-k oracle.
template <typename ScoreFn>
TupleVec SelectTopK(TupleVec tuples, const ScoreFn& score_of, size_t k);

// ---------------------------------------------------------------------------
// Implementation details only below here.
// ---------------------------------------------------------------------------

template <typename ScoreFn>
TupleVec SelectTopK(TupleVec tuples, const ScoreFn& score_of, size_t k) {
  auto better = [&](const Tuple& a, const Tuple& b) {
    const double sa = score_of(a.key), sb = score_of(b.key);
    if (sa != sb) return sa > sb;
    return a.id < b.id;
  };
  if (tuples.size() > k) {
    std::partial_sort(tuples.begin(), tuples.begin() + k, tuples.end(),
                      better);
    tuples.resize(k);
  } else {
    std::sort(tuples.begin(), tuples.end(), better);
  }
  return tuples;
}

}  // namespace ripple

#endif  // RIPPLE_STORE_LOCAL_ALGOS_H_
