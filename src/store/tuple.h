#ifndef RIPPLE_STORE_TUPLE_H_
#define RIPPLE_STORE_TUPLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"

namespace ripple {

/// A data tuple: a unique id plus its key, a point of the indexed domain.
/// Tuples are what peers store and what rank queries return.
struct Tuple {
  uint64_t id = 0;
  Point key;

  std::string ToString() const {
    return "#" + std::to_string(id) + key.ToString();
  }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.id == b.id && a.key == b.key;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
};

/// Deterministic tie-breaking order: by id. Used wherever distributed and
/// centralized computations must agree exactly.
struct TupleIdLess {
  bool operator()(const Tuple& a, const Tuple& b) const { return a.id < b.id; }
};

using TupleVec = std::vector<Tuple>;

}  // namespace ripple

#endif  // RIPPLE_STORE_TUPLE_H_
