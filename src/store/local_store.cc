#include "store/local_store.h"

#include <algorithm>

namespace ripple {

void LocalStore::Add(const Tuple& t) {
  tuples_.push_back(t);
  index_stale_ = true;
}

void LocalStore::AddAll(const TupleVec& ts) {
  tuples_.insert(tuples_.end(), ts.begin(), ts.end());
  index_stale_ = true;
}

void LocalStore::Clear() {
  tuples_.clear();
  index_stale_ = true;
}

TupleVec LocalStore::ExtractOutside(const Rect& zone, const Rect& domain) {
  TupleVec moved;
  auto inside = [&](const Tuple& t) {
    return zone.ContainsHalfOpen(t.key, domain);
  };
  auto it = std::stable_partition(tuples_.begin(), tuples_.end(), inside);
  moved.assign(it, tuples_.end());
  tuples_.erase(it, tuples_.end());
  index_stale_ = true;
  return moved;
}

const KdIndex* LocalStore::Index() const {
  if (tuples_.size() < kIndexThreshold) return nullptr;
  if (index_stale_) {
    index_.Build(tuples_);
    index_stale_ = false;
  }
  return &index_;
}

TupleVec LocalStore::TopKAbove(const Scorer& scorer, size_t k,
                               double tau) const {
  auto score = [&](const Point& p) { return scorer.Score(p); };
  if (const KdIndex* idx = Index()) {
    auto upper = [&](const Rect& r) { return scorer.UpperBound(r); };
    return idx->TopK(score, upper, k, tau, /*inclusive_floor=*/true);
  }
  TupleVec above;
  for (const Tuple& t : tuples_) {
    if (score(t.key) >= tau) above.push_back(t);
  }
  return SelectTopK(std::move(above), score, k);
}

TupleVec LocalStore::BestBelow(const Scorer& scorer, size_t count,
                               double tau) const {
  TupleVec candidates;
  for (const Tuple& t : tuples_) {
    if (scorer.Score(t.key) < tau) candidates.push_back(t);
  }
  return SelectTopK(std::move(candidates),
                    [&](const Point& p) { return scorer.Score(p); }, count);
}

TupleVec LocalStore::AllAtLeast(const Scorer& scorer, double tau) const {
  auto score = [&](const Point& p) { return scorer.Score(p); };
  TupleVec out;
  if (const KdIndex* idx = Index()) {
    auto upper = [&](const Rect& r) { return scorer.UpperBound(r); };
    idx->CollectAtLeast(score, upper, tau, &out);
  } else {
    for (const Tuple& t : tuples_) {
      if (score(t.key) >= tau) out.push_back(t);
    }
  }
  std::sort(out.begin(), out.end(), TupleIdLess());
  return out;
}

TupleVec LocalStore::LocalSkyline() const { return ComputeSkyline(tuples_); }

double LocalStore::MedianAlong(int dim) const {
  RIPPLE_CHECK(!tuples_.empty());
  std::vector<double> coords;
  coords.reserve(tuples_.size());
  for (const Tuple& t : tuples_) coords.push_back(t.key[dim]);
  const size_t mid = coords.size() / 2;
  std::nth_element(coords.begin(), coords.begin() + mid, coords.end());
  return coords[mid];
}

const Tuple* LocalStore::ArgMin(
    const std::function<double(const Point&)>& cost,
    const std::function<double(const Rect&)>& rect_lower,
    const std::function<bool(const Tuple&)>& admit,
    double* best_cost) const {
  if (const KdIndex* idx = Index()) {
    return idx->ArgMin(cost, rect_lower, admit, best_cost);
  }
  const Tuple* best = nullptr;
  double best_c = std::numeric_limits<double>::infinity();
  for (const Tuple& t : tuples_) {
    if (!admit(t)) continue;
    const double c = cost(t.key);
    if (best == nullptr || c < best_c || (c == best_c && t.id < best->id)) {
      best_c = c;
      best = &t;
    }
  }
  if (best_cost != nullptr) *best_cost = best_c;
  return best;
}

}  // namespace ripple
