#include "store/local_store.h"

#include <algorithm>
#include <cstring>

#include "common/arena.h"
#include "common/kernel_counters.h"

namespace ripple {

void LocalStore::Add(const Tuple& t) {
  flat_.Append(t);
  MarkMutated();
}

void LocalStore::AddAll(const TupleVec& ts) {
  flat_.AppendAll(ts);
  MarkMutated();
}

void LocalStore::AddAll(const LocalStore& other) {
  flat_.AppendAll(other.flat_);
  MarkMutated();
}

void LocalStore::Clear() {
  flat_.Clear();
  MarkMutated();
}

bool LocalStore::ContainsId(uint64_t id) const {
  if (ids_stale_) {
    sorted_ids_ = flat_.ids();
    std::sort(sorted_ids_.begin(), sorted_ids_.end());
    ids_stale_ = false;
  }
  return std::binary_search(sorted_ids_.begin(), sorted_ids_.end(), id);
}

TupleVec LocalStore::ExtractOutside(const Rect& zone, const Rect& domain) {
  std::vector<uint8_t> outside(flat_.size());
  for (size_t i = 0; i < flat_.size(); ++i) {
    outside[i] =
        static_cast<uint8_t>(!zone.ContainsHalfOpen(flat_.PointAt(i), domain));
  }
  TupleVec moved = flat_.ExtractIf(outside);
  MarkMutated();
  return moved;
}

const KdIndex* LocalStore::Index() const {
  if (flat_.size() < kIndexThreshold) return nullptr;
  if (index_stale_) {
    index_.Build(flat_);
    index_stale_ = false;
  }
  return &index_;
}

TupleVec LocalStore::TopKAbove(const Scorer& scorer, size_t k,
                               double tau) const {
  if (const KdIndex* idx = Index()) {
    return idx->TopK(scorer, k, tau, /*inclusive_floor=*/true);
  }
  const size_t n = flat_.size();
  if (n == 0 || k == 0) return {};
  Arena& arena = PerQueryArena();
  ArenaScope scope(&arena);
  double* scores = arena.AllocateArray<double>(n);
  scorer.ScoreBlock(flat_.cols(), flat_.dims(), n, scores);
  LocalKernelCounters().tuples_scanned += n;
  store::BoundedTopK queue(k);
  for (size_t i = 0; i < n; ++i) {
    if (scores[i] >= tau) {
      queue.Insert(scores[i], flat_.id(i), static_cast<uint32_t>(i));
    }
  }
  TupleVec out;
  out.reserve(queue.size());
  for (const store::BoundedTopK::Entry& e : queue.SortedDescending()) {
    out.push_back(flat_.TupleAt(e.payload));
  }
  return out;
}

TupleVec LocalStore::BestBelow(const Scorer& scorer, size_t count,
                               double tau) const {
  const size_t n = flat_.size();
  if (n == 0 || count == 0) return {};
  Arena& arena = PerQueryArena();
  ArenaScope scope(&arena);
  double* scores = arena.AllocateArray<double>(n);
  scorer.ScoreBlock(flat_.cols(), flat_.dims(), n, scores);
  LocalKernelCounters().tuples_scanned += n;
  store::BoundedTopK queue(count);
  for (size_t i = 0; i < n; ++i) {
    if (scores[i] < tau) {
      queue.Insert(scores[i], flat_.id(i), static_cast<uint32_t>(i));
    }
  }
  TupleVec out;
  out.reserve(queue.size());
  for (const store::BoundedTopK::Entry& e : queue.SortedDescending()) {
    out.push_back(flat_.TupleAt(e.payload));
  }
  return out;
}

TupleVec LocalStore::AllAtLeast(const Scorer& scorer, double tau) const {
  TupleVec out;
  if (const KdIndex* idx = Index()) {
    idx->CollectAtLeast(scorer, tau, &out);
  } else {
    const size_t n = flat_.size();
    if (n > 0) {
      Arena& arena = PerQueryArena();
      ArenaScope scope(&arena);
      double* scores = arena.AllocateArray<double>(n);
      scorer.ScoreBlock(flat_.cols(), flat_.dims(), n, scores);
      LocalKernelCounters().tuples_scanned += n;
      for (size_t i = 0; i < n; ++i) {
        if (scores[i] >= tau) out.push_back(flat_.TupleAt(i));
      }
    }
  }
  std::sort(out.begin(), out.end(), TupleIdLess());
  return out;
}

TupleVec LocalStore::LocalSkyline() const {
  return ComputeSkyline(flat_.Materialize());
}

double LocalStore::MedianAlong(int dim) const {
  RIPPLE_CHECK(!flat_.empty());
  const size_t n = flat_.size();
  Arena& arena = PerQueryArena();
  ArenaScope scope(&arena);
  double* coords = arena.AllocateArray<double>(n);
  std::memcpy(coords, flat_.col(dim), n * sizeof(double));
  const size_t mid = n / 2;
  std::nth_element(coords, coords + mid, coords + n);
  return coords[mid];
}

std::optional<Tuple> LocalStore::ArgMin(
    const std::function<double(const Point&)>& cost,
    const std::function<double(const Rect&)>& rect_lower,
    const std::function<bool(const Tuple&)>& admit,
    double* best_cost) const {
  if (const KdIndex* idx = Index()) {
    return idx->ArgMin(cost, rect_lower, admit, best_cost);
  }
  std::optional<Tuple> best;
  double best_c = std::numeric_limits<double>::infinity();
  KernelCounters& kc = LocalKernelCounters();
  for (size_t i = 0; i < flat_.size(); ++i) {
    ++kc.tuples_scanned;
    const Tuple t = flat_.TupleAt(i);
    if (!admit(t)) continue;
    const double c = cost(t.key);
    if (!best.has_value() || c < best_c || (c == best_c && t.id < best->id)) {
      best_c = c;
      best = t;
    }
  }
  if (best_cost != nullptr) *best_cost = best_c;
  return best;
}

}  // namespace ripple
