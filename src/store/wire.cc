#include "store/wire.h"

namespace ripple {

void EncodeTuple(const Tuple& t, wire::Buffer* buf) {
  buf->PutVarint(t.id);
  EncodePoint(t.key, buf);
}

bool DecodeTuple(wire::Reader* r, Tuple* out) {
  out->id = r->Varint();
  return r->ok() && DecodePoint(r, &out->key);
}

void EncodeTupleVec(const TupleVec& v, wire::Buffer* buf) {
  buf->PutVarint(v.size());
  for (const Tuple& t : v) EncodeTuple(t, buf);
}

bool DecodeTupleVec(wire::Reader* r, TupleVec* out) {
  const uint64_t count = r->Varint();
  if (!r->ok() || count > r->remaining() / 2) {
    r->Fail();
    return false;
  }
  TupleVec v;
  v.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Tuple t;
    if (!DecodeTuple(r, &t)) return false;
    v.push_back(std::move(t));
  }
  *out = std::move(v);
  return true;
}

}  // namespace ripple
