#ifndef RIPPLE_STORE_WIRE_H_
#define RIPPLE_STORE_WIRE_H_

#include "geom/wire.h"
#include "store/tuple.h"
#include "wire/buffer.h"

namespace ripple {

/// Wire codecs for tuples (docs/WIRE.md, "store payloads").

/// Tuple: [varint id][point key].
void EncodeTuple(const Tuple& t, wire::Buffer* buf);
bool DecodeTuple(wire::Reader* r, Tuple* out);

/// TupleVec: [varint count][count x tuple]. The count is sanity-bounded
/// by the remaining buffer (every tuple takes at least 2 bytes), so a
/// corrupted count rejects instead of allocating.
void EncodeTupleVec(const TupleVec& v, wire::Buffer* buf);
bool DecodeTupleVec(wire::Reader* r, TupleVec* out);

}  // namespace ripple

#endif  // RIPPLE_STORE_WIRE_H_
