#ifndef RIPPLE_STORE_BOUNDED_TOPK_H_
#define RIPPLE_STORE_BOUNDED_TOPK_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/kernel_counters.h"

namespace ripple::store {

/// A bounded branch-light top-k queue in the PISA topk_queue mould: a
/// fixed-capacity binary min-heap whose root is the current k-th best
/// entry. Once full, a candidate is admitted only when it beats the root
/// under the deterministic (score desc, id asc) total order — one
/// comparison against the threshold in the common reject case, one
/// sift-down in the admit case. Replaces the copy-and-full-sort selection
/// the scan paths used to do: O(n log k) worst case, O(n) when the data
/// arrives in decreasing-relevance order, and no O(n) candidate copy.
///
/// Ties on score break toward the smaller id, matching the SelectTopK
/// oracle, so indexed and scan paths agree byte-for-byte.
class BoundedTopK {
 public:
  struct Entry {
    double score = 0.0;
    uint64_t id = 0;
    /// Caller-owned handle (row index, vector position, ...).
    uint32_t payload = 0;
  };

  explicit BoundedTopK(size_t k) : k_(k) { heap_.reserve(k); }

  size_t k() const { return k_; }
  size_t size() const { return heap_.size(); }
  bool full() const { return heap_.size() >= k_; }

  /// Admission threshold: the k-th best score once full, -inf before.
  double threshold() const {
    return full() && k_ > 0 ? heap_.front().score
                            : -std::numeric_limits<double>::infinity();
  }

  bool WouldAdmit(double score, uint64_t id) const {
    if (k_ == 0) return false;
    if (!full()) return true;
    const Entry& worst = heap_.front();
    return score > worst.score || (score == worst.score && id < worst.id);
  }

  /// Inserts when admissible; returns whether the entry entered the heap.
  bool Insert(double score, uint64_t id, uint32_t payload) {
    if (!WouldAdmit(score, id)) return false;
    ++LocalKernelCounters().heap_pushes;
    if (!full()) {
      heap_.push_back({score, id, payload});
      SiftUp(heap_.size() - 1);
      return true;
    }
    heap_[0] = {score, id, payload};
    SiftDown(0);
    return true;
  }

  /// The kept entries, best first (score desc, id asc). Non-destructive.
  std::vector<Entry> SortedDescending() const {
    std::vector<Entry> out = heap_;
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
      if (a.score != b.score) return a.score > b.score;
      return a.id < b.id;
    });
    return out;
  }

 private:
  /// Heap order: the WORST entry sits at the root. a "worse than" b under
  /// the (score desc, id asc) total order.
  static bool Worse(const Entry& a, const Entry& b) {
    if (a.score != b.score) return a.score < b.score;
    return a.id > b.id;
  }

  void SiftUp(size_t i) {
    while (i > 0) {
      const size_t parent = (i - 1) / 2;
      if (!Worse(heap_[i], heap_[parent])) break;
      std::swap(heap_[i], heap_[parent]);
      i = parent;
    }
  }

  void SiftDown(size_t i) {
    const size_t n = heap_.size();
    while (true) {
      const size_t l = 2 * i + 1;
      const size_t r = l + 1;
      size_t worst = i;
      if (l < n && Worse(heap_[l], heap_[worst])) worst = l;
      if (r < n && Worse(heap_[r], heap_[worst])) worst = r;
      if (worst == i) break;
      std::swap(heap_[i], heap_[worst]);
      i = worst;
    }
  }

  size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace ripple::store

#endif  // RIPPLE_STORE_BOUNDED_TOPK_H_
