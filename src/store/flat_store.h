#ifndef RIPPLE_STORE_FLAT_STORE_H_
#define RIPPLE_STORE_FLAT_STORE_H_

#include <cstdint>
#include <vector>

#include "common/check.h"
#include "store/tuple.h"

namespace ripple::store {

/// Flat structure-of-arrays tuple storage: one id array plus d contiguous
/// coordinate columns, sized to the runtime dimensionality (not kMaxDims).
/// This is the backing layout of LocalStore and KdIndex — the per-peer
/// kernels (block scoring, column-wise dominance, bounded top-k) stream
/// whole columns instead of striding over 88-byte Tuple records, which is
/// what lets the inner loops auto-vectorize. Tuple/TupleVec survive only
/// at the edges (wire codecs, answers, oracles); TupleAt/Materialize
/// convert on demand.
class FlatStore {
 public:
  FlatStore() = default;

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  /// Number of coordinate columns; 0 until the first Append fixes it.
  int dims() const { return static_cast<int>(cols_.size()); }

  uint64_t id(size_t i) const {
    RIPPLE_DCHECK(i < ids_.size());
    return ids_[i];
  }
  const std::vector<uint64_t>& ids() const { return ids_; }

  /// Base pointer of coordinate column `c` (values of dimension c for all
  /// rows, contiguous).
  const double* col(int c) const {
    RIPPLE_DCHECK(c >= 0 && c < dims());
    return cols_[c].data();
  }

  /// All d column base pointers, kernel-call shaped. Valid until the next
  /// mutation.
  const double* const* cols() const {
    col_ptrs_.resize(cols_.size());
    for (size_t c = 0; c < cols_.size(); ++c) col_ptrs_[c] = cols_[c].data();
    return col_ptrs_.data();
  }

  Point PointAt(size_t i) const {
    RIPPLE_DCHECK(i < ids_.size());
    Point p(dims());
    for (int c = 0; c < dims(); ++c) p[c] = cols_[c][i];
    return p;
  }

  Tuple TupleAt(size_t i) const { return Tuple{id(i), PointAt(i)}; }

  void Reserve(size_t n) {
    ids_.reserve(n);
    for (auto& col : cols_) col.reserve(n);
  }

  void Append(const Tuple& t) {
    const int d = t.key.dims();
    if (empty() && d != dims()) Reshape(d);
    RIPPLE_DCHECK(d == dims());
    ids_.push_back(t.id);
    for (int c = 0; c < d; ++c) cols_[c].push_back(t.key[c]);
  }

  void AppendAll(const TupleVec& ts) {
    Reserve(size() + ts.size());
    for (const Tuple& t : ts) Append(t);
  }

  /// Column-wise bulk absorb of another store's rows.
  void AppendAll(const FlatStore& other) {
    if (other.empty()) return;
    if (empty() && other.dims() != dims()) Reshape(other.dims());
    RIPPLE_DCHECK(other.dims() == dims());
    ids_.insert(ids_.end(), other.ids_.begin(), other.ids_.end());
    for (int c = 0; c < dims(); ++c) {
      cols_[c].insert(cols_[c].end(), other.cols_[c].begin(),
                      other.cols_[c].end());
    }
  }

  /// Drops all rows. Dimensionality and column capacity are kept; an
  /// Append with a different dims() re-shapes an empty store.
  void Clear() {
    ids_.clear();
    for (auto& col : cols_) col.clear();
  }

  /// A new store holding this store's rows reordered to `order`
  /// (order[i] = source row of output row i). Column-wise gather.
  FlatStore Permuted(const std::vector<uint32_t>& order) const {
    FlatStore out;
    out.cols_.resize(cols_.size());
    out.ids_.reserve(order.size());
    for (uint32_t i : order) out.ids_.push_back(ids_[i]);
    for (size_t c = 0; c < cols_.size(); ++c) {
      out.cols_[c].reserve(order.size());
      for (uint32_t i : order) out.cols_[c].push_back(cols_[c][i]);
    }
    return out;
  }

  TupleVec Materialize() const {
    TupleVec out;
    out.reserve(size());
    for (size_t i = 0; i < size(); ++i) out.push_back(TupleAt(i));
    return out;
  }

  /// Stable split: rows with extract_mask[i] != 0 are removed and
  /// returned (in row order); kept rows are compacted preserving order —
  /// the SoA equivalent of std::stable_partition + erase.
  TupleVec ExtractIf(const std::vector<uint8_t>& extract_mask) {
    RIPPLE_DCHECK(extract_mask.size() == size());
    TupleVec out;
    size_t w = 0;
    for (size_t r = 0; r < size(); ++r) {
      if (extract_mask[r]) {
        out.push_back(TupleAt(r));
        continue;
      }
      if (w != r) {
        ids_[w] = ids_[r];
        for (int c = 0; c < dims(); ++c) cols_[c][w] = cols_[c][r];
      }
      ++w;
    }
    ids_.resize(w);
    for (auto& col : cols_) col.resize(w);
    return out;
  }

 private:
  void Reshape(int d) {
    RIPPLE_CHECK(d >= 0 && d <= kMaxDims);
    RIPPLE_DCHECK(empty());
    cols_.assign(static_cast<size_t>(d), {});
  }

  std::vector<uint64_t> ids_;
  std::vector<std::vector<double>> cols_;  // cols_[c][row], dims() columns
  mutable std::vector<const double*> col_ptrs_;  // scratch for cols()
};

}  // namespace ripple::store

#endif  // RIPPLE_STORE_FLAT_STORE_H_
