#ifndef RIPPLE_STORE_KD_INDEX_H_
#define RIPPLE_STORE_KD_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"
#include "geom/rect.h"
#include "store/tuple.h"

namespace ripple {

/// An in-memory balanced k-d tree over a peer's local tuples.
///
/// Peers use it to answer their share of a rank query without scanning all
/// local data: branch-and-bound pruning against a caller-supplied
/// rectangle bound. The tree is rebuilt from scratch on demand (local data
/// sets are small — this is a per-peer index, not the distributed one).
///
/// Bound functors must be *sound*: for maximization traversals,
/// rect_bound(r) >= point_score(p) for every p in r; symmetrically for
/// minimization.
class KdIndex {
 public:
  KdIndex() = default;

  /// Builds a balanced tree over a copy of the tuples.
  explicit KdIndex(TupleVec tuples) { Build(std::move(tuples)); }

  void Build(TupleVec tuples);

  bool empty() const { return tuples_.empty(); }
  size_t size() const { return tuples_.size(); }
  const TupleVec& tuples() const { return tuples_; }

  /// Collects every tuple whose score is >= tau (maximization semantics),
  /// pruning subtrees whose rectangle upper bound falls below tau.
  template <typename ScoreFn, typename RectUpperFn>
  void CollectAtLeast(const ScoreFn& score, const RectUpperFn& rect_upper,
                      double tau, TupleVec* out) const {
    if (empty()) return;
    CollectRec(kRoot, score, rect_upper, tau, out);
  }

  /// Returns up to k highest scoring tuples with score above `floor`
  /// (strictly, or >= when `inclusive_floor`), best first. Branch-and-bound
  /// best-first search.
  template <typename ScoreFn, typename RectUpperFn>
  TupleVec TopK(const ScoreFn& score, const RectUpperFn& rect_upper, size_t k,
                double floor = -std::numeric_limits<double>::infinity(),
                bool inclusive_floor = false) const;

  /// Returns the tuple minimizing `cost` among tuples accepted by `admit`,
  /// pruning subtrees whose rectangle lower bound is not below the current
  /// best. Returns nullptr when no admitted tuple exists.
  template <typename CostFn, typename RectLowerFn, typename AdmitFn>
  const Tuple* ArgMin(const CostFn& cost, const RectLowerFn& rect_lower,
                      const AdmitFn& admit, double* best_cost_out) const;

 private:
  static constexpr int kRoot = 0;
  static constexpr size_t kLeafSize = 8;

  struct Node {
    int left = -1;    // child node indices; -1 for leaves
    int right = -1;
    uint32_t begin = 0;  // tuple range [begin, end) for leaves
    uint32_t end = 0;
    Rect bounds;  // tight bounding rect of the subtree's tuples
  };

  int BuildRec(uint32_t begin, uint32_t end, int depth);
  Rect BoundsOf(uint32_t begin, uint32_t end) const;

  template <typename ScoreFn, typename RectUpperFn>
  void CollectRec(int node, const ScoreFn& score,
                  const RectUpperFn& rect_upper, double tau,
                  TupleVec* out) const;

  TupleVec tuples_;
  std::vector<Node> nodes_;
};

// ---------------------------------------------------------------------------
// Implementation details only below here.
// ---------------------------------------------------------------------------

template <typename ScoreFn, typename RectUpperFn>
void KdIndex::CollectRec(int node, const ScoreFn& score,
                         const RectUpperFn& rect_upper, double tau,
                         TupleVec* out) const {
  const Node& n = nodes_[node];
  if (rect_upper(n.bounds) < tau) return;
  if (n.left < 0) {
    for (uint32_t i = n.begin; i < n.end; ++i) {
      if (score(tuples_[i].key) >= tau) out->push_back(tuples_[i]);
    }
    return;
  }
  CollectRec(n.left, score, rect_upper, tau, out);
  CollectRec(n.right, score, rect_upper, tau, out);
}

template <typename ScoreFn, typename RectUpperFn>
TupleVec KdIndex::TopK(const ScoreFn& score, const RectUpperFn& rect_upper,
                       size_t k, double floor, bool inclusive_floor) const {
  TupleVec best;
  if (empty() || k == 0) return best;
  // Best-first expansion of (bound, node) pairs; a simple vector-based
  // max-heap keyed by upper bound.
  struct Entry {
    double bound;
    int node;
    bool operator<(const Entry& o) const { return bound < o.bound; }
  };
  std::vector<Entry> heap;
  heap.push_back({rect_upper(nodes_[kRoot].bounds), kRoot});
  std::vector<std::pair<double, const Tuple*>> found;  // (score, tuple)
  auto kth_score = [&]() {
    return found.size() < k ? floor : found.back().first;
  };
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const Entry e = heap.back();
    heap.pop_back();
    if (e.bound < kth_score() ||
        (found.size() >= k && e.bound == kth_score())) {
      break;  // No remaining subtree can improve the current top-k.
    }
    const Node& n = nodes_[e.node];
    if (n.left < 0) {
      for (uint32_t i = n.begin; i < n.end; ++i) {
        const double s = score(tuples_[i].key);
        if (inclusive_floor ? s < floor : s <= floor) continue;
        if (found.size() < k || s > found.back().first) {
          found.emplace_back(s, &tuples_[i]);
          std::sort(found.begin(), found.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second->id < b.second->id;
                    });
          if (found.size() > k) found.pop_back();
        }
      }
    } else {
      heap.push_back({rect_upper(nodes_[n.left].bounds), n.left});
      std::push_heap(heap.begin(), heap.end());
      heap.push_back({rect_upper(nodes_[n.right].bounds), n.right});
      std::push_heap(heap.begin(), heap.end());
    }
  }
  best.reserve(found.size());
  for (const auto& [s, t] : found) best.push_back(*t);
  return best;
}

template <typename CostFn, typename RectLowerFn, typename AdmitFn>
const Tuple* KdIndex::ArgMin(const CostFn& cost, const RectLowerFn& rect_lower,
                             const AdmitFn& admit,
                             double* best_cost_out) const {
  if (empty()) return nullptr;
  const Tuple* best = nullptr;
  double best_cost = std::numeric_limits<double>::infinity();
  // Depth-first with pruning; recursion via explicit stack ordered so the
  // more promising child is visited first.
  std::vector<int> stack = {kRoot};
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    const Node& n = nodes_[node];
    if (rect_lower(n.bounds) >= best_cost && best != nullptr) continue;
    if (n.left < 0) {
      for (uint32_t i = n.begin; i < n.end; ++i) {
        if (!admit(tuples_[i])) continue;
        const double c = cost(tuples_[i].key);
        if (c < best_cost ||
            (c == best_cost && best != nullptr && tuples_[i].id < best->id)) {
          best_cost = c;
          best = &tuples_[i];
        }
      }
      continue;
    }
    const double bl = rect_lower(nodes_[n.left].bounds);
    const double br = rect_lower(nodes_[n.right].bounds);
    // Push the worse child first so the better one is expanded next.
    if (bl <= br) {
      stack.push_back(n.right);
      stack.push_back(n.left);
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  if (best_cost_out != nullptr) *best_cost_out = best_cost;
  return best;
}

}  // namespace ripple

#endif  // RIPPLE_STORE_KD_INDEX_H_
