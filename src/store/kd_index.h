#ifndef RIPPLE_STORE_KD_INDEX_H_
#define RIPPLE_STORE_KD_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <vector>

#include "common/check.h"
#include "common/kernel_counters.h"
#include "geom/rect.h"
#include "geom/scoring.h"
#include "store/bounded_topk.h"
#include "store/flat_store.h"
#include "store/tuple.h"

namespace ripple {

/// An in-memory balanced k-d tree over a peer's local tuples.
///
/// Peers use it to answer their share of a rank query without scanning all
/// local data: branch-and-bound pruning against a caller-supplied
/// rectangle bound. The tree is rebuilt from scratch on demand (local data
/// sets are small — this is a per-peer index, not the distributed one).
///
/// Rows are held in a store::FlatStore permuted to tree order, so every
/// leaf is a contiguous [begin, end) sub-range of each coordinate column —
/// the Scorer overloads evaluate whole leaves with one ScoreBlock call
/// and feed a BoundedTopK, no per-row virtual dispatch or re-sorting.
///
/// Bound functors must be *sound*: for maximization traversals,
/// rect_bound(r) >= point_score(p) for every p in r; symmetrically for
/// minimization.
class KdIndex {
 public:
  KdIndex() = default;

  /// Builds a balanced tree over a copy of the tuples.
  explicit KdIndex(const TupleVec& tuples) { Build(tuples); }
  explicit KdIndex(const store::FlatStore& rows) { Build(rows); }

  void Build(const store::FlatStore& rows);
  void Build(const TupleVec& tuples);

  bool empty() const { return rows_.empty(); }
  size_t size() const { return rows_.size(); }
  /// The indexed rows in tree order (leaf ranges index into this).
  const store::FlatStore& rows() const { return rows_; }

  /// Collects every tuple whose score is >= tau (maximization semantics),
  /// pruning subtrees whose rectangle upper bound falls below tau.
  template <typename ScoreFn, typename RectUpperFn>
  void CollectAtLeast(const ScoreFn& score, const RectUpperFn& rect_upper,
                      double tau, TupleVec* out) const {
    CollectImpl(MakePointLeafScore(score), rect_upper, tau, out);
  }

  /// Scorer form: leaves are scored in one ScoreBlock call each.
  /// (Defined below the class: the block leaf-score helper has a deduced
  /// return type, so its definition must precede uses.)
  void CollectAtLeast(const Scorer& scorer, double tau, TupleVec* out) const;

  /// Returns up to k highest scoring tuples with score above `floor`
  /// (strictly, or >= when `inclusive_floor`), best first. Branch-and-bound
  /// best-first search over a BoundedTopK; ties on score break toward the
  /// smaller id, matching the SelectTopK oracle.
  template <typename ScoreFn, typename RectUpperFn>
  TupleVec TopK(const ScoreFn& score, const RectUpperFn& rect_upper, size_t k,
                double floor = -std::numeric_limits<double>::infinity(),
                bool inclusive_floor = false) const {
    return TopKImpl(MakePointLeafScore(score), rect_upper, k, floor,
                    inclusive_floor);
  }

  /// Scorer form: leaves are scored in one ScoreBlock call each.
  TupleVec TopK(const Scorer& scorer, size_t k,
                double floor = -std::numeric_limits<double>::infinity(),
                bool inclusive_floor = false) const;

  /// Returns the tuple minimizing `cost` among tuples accepted by `admit`,
  /// pruning subtrees whose rectangle lower bound is not below the current
  /// best. Empty optional when no admitted tuple exists; ties broken by
  /// smallest id.
  template <typename CostFn, typename RectLowerFn, typename AdmitFn>
  std::optional<Tuple> ArgMin(const CostFn& cost,
                              const RectLowerFn& rect_lower,
                              const AdmitFn& admit,
                              double* best_cost_out) const;

 private:
  static constexpr int kRoot = 0;
  static constexpr size_t kLeafSize = 8;

  struct Node {
    int left = -1;    // child node indices; -1 for leaves
    int right = -1;
    uint32_t begin = 0;  // row range [begin, end) for leaves
    uint32_t end = 0;
    Rect bounds;  // tight bounding rect of the subtree's rows
  };

  int BuildRec(const store::FlatStore& src, std::vector<uint32_t>* perm,
               uint32_t begin, uint32_t end, int depth);
  Rect BoundsOf(const store::FlatStore& src,
                const std::vector<uint32_t>& perm, uint32_t begin,
                uint32_t end) const;

  /// Leaf scorers fill out[0..end-begin) with the scores of rows
  /// [begin, end). The point form calls the functor row by row; the block
  /// form hands the leaf's contiguous column sub-ranges to ScoreBlock.
  template <typename ScoreFn>
  auto MakePointLeafScore(const ScoreFn& score) const {
    return [this, &score](uint32_t begin, uint32_t end, double* out) {
      for (uint32_t i = begin; i < end; ++i) {
        out[i - begin] = score(rows_.PointAt(i));
      }
    };
  }

  auto MakeBlockLeafScore(const Scorer& scorer) const {
    return [this, &scorer](uint32_t begin, uint32_t end, double* out) {
      const double* sub[kMaxDims];
      const int d = rows_.dims();
      for (int c = 0; c < d; ++c) sub[c] = rows_.col(c) + begin;
      scorer.ScoreBlock(sub, d, end - begin, out);
    };
  }

  template <typename LeafScoreFn, typename RectUpperFn>
  TupleVec TopKImpl(const LeafScoreFn& leaf_score,
                    const RectUpperFn& rect_upper, size_t k, double floor,
                    bool inclusive_floor) const;

  template <typename LeafScoreFn, typename RectUpperFn>
  void CollectImpl(const LeafScoreFn& leaf_score,
                   const RectUpperFn& rect_upper, double tau,
                   TupleVec* out) const;

  template <typename LeafScoreFn, typename RectUpperFn>
  void CollectRec(int node, const LeafScoreFn& leaf_score,
                  const RectUpperFn& rect_upper, double tau,
                  TupleVec* out) const;

  store::FlatStore rows_;
  std::vector<Node> nodes_;
};

// ---------------------------------------------------------------------------
// Implementation details only below here.
// ---------------------------------------------------------------------------

inline void KdIndex::CollectAtLeast(const Scorer& scorer, double tau,
                                    TupleVec* out) const {
  CollectImpl(MakeBlockLeafScore(scorer),
              [&](const Rect& r) { return scorer.UpperBound(r); }, tau, out);
}

inline TupleVec KdIndex::TopK(const Scorer& scorer, size_t k, double floor,
                              bool inclusive_floor) const {
  return TopKImpl(MakeBlockLeafScore(scorer),
                  [&](const Rect& r) { return scorer.UpperBound(r); }, k,
                  floor, inclusive_floor);
}

template <typename LeafScoreFn, typename RectUpperFn>
void KdIndex::CollectImpl(const LeafScoreFn& leaf_score,
                          const RectUpperFn& rect_upper, double tau,
                          TupleVec* out) const {
  if (empty()) return;
  CollectRec(kRoot, leaf_score, rect_upper, tau, out);
}

template <typename LeafScoreFn, typename RectUpperFn>
void KdIndex::CollectRec(int node, const LeafScoreFn& leaf_score,
                         const RectUpperFn& rect_upper, double tau,
                         TupleVec* out) const {
  const Node& n = nodes_[node];
  if (rect_upper(n.bounds) < tau) return;
  if (n.left < 0) {
    double scores[kLeafSize];
    leaf_score(n.begin, n.end, scores);
    LocalKernelCounters().tuples_scanned += n.end - n.begin;
    for (uint32_t i = n.begin; i < n.end; ++i) {
      if (scores[i - n.begin] >= tau) out->push_back(rows_.TupleAt(i));
    }
    return;
  }
  CollectRec(n.left, leaf_score, rect_upper, tau, out);
  CollectRec(n.right, leaf_score, rect_upper, tau, out);
}

template <typename LeafScoreFn, typename RectUpperFn>
TupleVec KdIndex::TopKImpl(const LeafScoreFn& leaf_score,
                           const RectUpperFn& rect_upper, size_t k,
                           double floor, bool inclusive_floor) const {
  TupleVec best;
  if (empty() || k == 0) return best;
  // Best-first expansion of (bound, node) pairs; a simple vector-based
  // max-heap keyed by upper bound.
  struct Entry {
    double bound;
    int node;
    bool operator<(const Entry& o) const { return bound < o.bound; }
  };
  std::vector<Entry> heap;
  heap.push_back({rect_upper(nodes_[kRoot].bounds), kRoot});
  store::BoundedTopK queue(k);
  KernelCounters& kc = LocalKernelCounters();
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end());
    const Entry e = heap.back();
    heap.pop_back();
    // No remaining subtree can improve the current top-k. The cut is
    // strict even at equality: a node whose bound TIES the k-th score may
    // still hold an equal-score tuple with a smaller id, which the
    // deterministic (score desc, id asc) order must admit.
    if (e.bound < (queue.full() ? queue.threshold() : floor)) break;
    const Node& n = nodes_[e.node];
    if (n.left < 0) {
      double scores[kLeafSize];
      leaf_score(n.begin, n.end, scores);
      kc.tuples_scanned += n.end - n.begin;
      for (uint32_t i = n.begin; i < n.end; ++i) {
        const double s = scores[i - n.begin];
        if (inclusive_floor ? s < floor : s <= floor) continue;
        queue.Insert(s, rows_.id(i), i);
      }
    } else {
      heap.push_back({rect_upper(nodes_[n.left].bounds), n.left});
      std::push_heap(heap.begin(), heap.end());
      heap.push_back({rect_upper(nodes_[n.right].bounds), n.right});
      std::push_heap(heap.begin(), heap.end());
    }
  }
  for (const store::BoundedTopK::Entry& e : queue.SortedDescending()) {
    best.push_back(rows_.TupleAt(e.payload));
  }
  return best;
}

template <typename CostFn, typename RectLowerFn, typename AdmitFn>
std::optional<Tuple> KdIndex::ArgMin(const CostFn& cost,
                                     const RectLowerFn& rect_lower,
                                     const AdmitFn& admit,
                                     double* best_cost_out) const {
  if (empty()) return std::nullopt;
  std::optional<Tuple> best;
  double best_cost = std::numeric_limits<double>::infinity();
  KernelCounters& kc = LocalKernelCounters();
  // Depth-first with pruning; recursion via explicit stack ordered so the
  // more promising child is visited first.
  std::vector<int> stack = {kRoot};
  while (!stack.empty()) {
    const int node = stack.back();
    stack.pop_back();
    const Node& n = nodes_[node];
    if (rect_lower(n.bounds) >= best_cost && best.has_value()) continue;
    if (n.left < 0) {
      kc.tuples_scanned += n.end - n.begin;
      for (uint32_t i = n.begin; i < n.end; ++i) {
        const Tuple t = rows_.TupleAt(i);
        if (!admit(t)) continue;
        const double c = cost(t.key);
        if (c < best_cost ||
            (c == best_cost && best.has_value() && t.id < best->id)) {
          best_cost = c;
          best = t;
        }
      }
      continue;
    }
    const double bl = rect_lower(nodes_[n.left].bounds);
    const double br = rect_lower(nodes_[n.right].bounds);
    // Push the worse child first so the better one is expanded next.
    if (bl <= br) {
      stack.push_back(n.right);
      stack.push_back(n.left);
    } else {
      stack.push_back(n.left);
      stack.push_back(n.right);
    }
  }
  if (best_cost_out != nullptr) *best_cost_out = best_cost;
  return best;
}

}  // namespace ripple

#endif  // RIPPLE_STORE_KD_INDEX_H_
