#ifndef RIPPLE_STORE_LOCAL_STORE_H_
#define RIPPLE_STORE_LOCAL_STORE_H_

#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "geom/rect.h"
#include "geom/scoring.h"
#include "store/flat_store.h"
#include "store/kd_index.h"
#include "store/local_algos.h"
#include "store/tuple.h"

namespace ripple {

/// A peer's local tuple storage plus the query primitives the RIPPLE
/// policies need from local data. Rows live in a store::FlatStore (flat
/// structure-of-arrays: ids plus d contiguous coordinate columns), so the
/// scan paths batch-score whole columns (Scorer::ScoreBlock) into a
/// bounded top-k queue instead of walking Tuple records. Mutations
/// (tuples arriving or handed off during zone splits/merges) invalidate a
/// lazily rebuilt k-d index; small stores are scanned directly.
class LocalStore {
 public:
  LocalStore() = default;

  size_t size() const { return flat_.size(); }
  bool empty() const { return flat_.empty(); }

  /// The backing columnar rows (insertion order).
  const store::FlatStore& flat() const { return flat_; }

  /// Row-order materialization into edge Tuples (wire, oracles, tests).
  TupleVec Snapshot() const { return flat_.Materialize(); }

  /// Calls `fn(const Tuple&)` for every stored tuple in row order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < flat_.size(); ++i) fn(flat_.TupleAt(i));
  }

  /// Whether a tuple with this id is stored here (lazy sorted-id index).
  bool ContainsId(uint64_t id) const;

  void Add(const Tuple& t);
  void AddAll(const TupleVec& ts);
  /// Column-wise bulk absorb of another store's rows (zone merges).
  void AddAll(const LocalStore& other);
  void Clear();

  /// Removes and returns every tuple whose key is NOT inside `zone`
  /// (half-open semantics relative to `domain`). Used when a zone is split
  /// and half the data moves to the new peer.
  TupleVec ExtractOutside(const Rect& zone, const Rect& domain);

  /// Up to `k` local tuples with score >= `tau`, best first (Alg. 4
  /// line 1). Inclusive so that a tuple witnessing the threshold itself is
  /// selected — with strict comparison the k-th answer tuple would be
  /// silently dropped whenever a state whose tau equals its score reaches
  /// its owner.
  TupleVec TopKAbove(const Scorer& scorer, size_t k, double tau) const;

  /// Up to `count` highest-ranking local tuples with score strictly below
  /// `tau` (Alg. 4 line 3: fill the answer with the best of the rest;
  /// strict so the two selections never double-count a tuple).
  TupleVec BestBelow(const Scorer& scorer, size_t count, double tau) const;

  /// Every local tuple with score >= `tau` (Alg. 6).
  TupleVec AllAtLeast(const Scorer& scorer, double tau) const;

  /// The local skyline (min-is-better dominance).
  TupleVec LocalSkyline() const;

  /// Median coordinate of the stored tuples along `dim` (lower median).
  /// Requires a non-empty store. Used for load-balancing zone splits.
  double MedianAlong(int dim) const;

  /// The local tuple minimizing `cost`, among tuples accepted by `admit`,
  /// pruning subtrees via `rect_lower` (sound lower bound of cost over a
  /// rect). Empty optional when the store has no admitted tuple. Ties are
  /// broken by smallest id for determinism.
  std::optional<Tuple> ArgMin(
      const std::function<double(const Point&)>& cost,
      const std::function<double(const Rect&)>& rect_lower,
      const std::function<bool(const Tuple&)>& admit,
      double* best_cost) const;

 private:
  /// Rebuilds the k-d index if stale; returns it (nullptr for tiny stores).
  const KdIndex* Index() const;

  void MarkMutated() {
    index_stale_ = true;
    ids_stale_ = true;
  }

  store::FlatStore flat_;
  mutable KdIndex index_;
  mutable bool index_stale_ = true;
  mutable std::vector<uint64_t> sorted_ids_;
  mutable bool ids_stale_ = true;

  /// Below this many tuples a plain scan beats the index.
  static constexpr size_t kIndexThreshold = 32;
};

}  // namespace ripple

#endif  // RIPPLE_STORE_LOCAL_STORE_H_
